#include "kernels/spmm_nnz_balanced.hh"

#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gpusim/context.hh"
#include "kernels/eg_units.hh"
#include "kernels/spmm_ref.hh"

namespace maxk
{

gpusim::KernelStats
spmmNnzBalanced(const CsrGraph &a, const Matrix &x, Matrix &y,
                const SimOptions &opt)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spmmNnzBalanced: X row count != |V|");
    const std::size_t dim = x.cols();
    y.ensureShape(a.numNodes(), dim);

    const EdgeGroupPartition &part = a.edgeGroupsCached(opt.workloadCap);
    const std::vector<EdgeGroup> &groups = part.groups();
    const EdgeId unit_nnz = opt.workloadCap * kNnzUnitGroups;
    const std::vector<kernels::EgUnit> units =
        kernels::planEgUnits(a, groups, unit_nnz);
    const std::vector<std::uint8_t> split =
        kernels::markSplitRows(groups, units, a.numNodes());

    // Numeric path: reference-order per-row double accumulation — the
    // unit structure is an accounting concern only, so the functional
    // result is bitwise-identical to spmmReference at any MAXK_THREADS.
    spmmReference(a, x, y);

    gpusim::KernelContext ctx(opt.device, "spmm_nnz_balanced",
                              opt.simulateCaches);

    // Rows that no plain per-unit store covers must be zeroed before
    // the launch: empty rows (no unit owns them) and split rows (their
    // units merge partials atomically into whatever is there).
    ctx.beginPhase("zero-fill");
    for (NodeId r = 0; r < a.numNodes(); ++r)
        if (a.degree(r) == 0 || split[r])
            ctx.globalWrite(r, y.row(r), dim * sizeof(Float));

    ctx.beginPhase("compute");
    // Unit-parallel traffic walk. Chunks hold whole units, so the
    // per-unit aggregate charges — and the serial replay order of the
    // shards — are identical at any thread count.
    const auto chunks =
        splitRange(0, units.size(), 8, resolveThreads(opt.threads));
    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t,
                                        IndexRange range) {
        for (std::size_t u = range.begin; u < range.end; ++u) {
            const kernels::EgUnit &unit = units[u];
            const std::uint64_t warp = u + 1;
            const EdgeGroup &first = groups[unit.egBegin];
            const EdgeGroup &last = groups[unit.egEnd - 1];
            const EdgeId e0 = first.begin, e1 = last.end;

            // Row extents plus the unit's contiguous metadata span: one
            // streaming request per array per unit, so sector rounding
            // amortises across the rows the unit covers — the schedule's
            // structural win over per-row metadata fetches.
            dev.globalReadStreaming(
                warp, &a.rowPtr()[first.row],
                (last.row - first.row + 2) * sizeof(EdgeId));
            dev.globalReadStreaming(warp, &a.values()[e0],
                                    (e1 - e0) * sizeof(Float));
            dev.globalReadStreaming(warp, &a.colIdx()[e0],
                                    (e1 - e0) * sizeof(NodeId));
            // Warp-level segmented reduction bookkeeping (row-boundary
            // flags + subwarp scans), independent of dim.
            dev.sharedOps(32, 0);

            for (EdgeId e = e0; e < e1; ++e) {
                dev.globalRead(warp, x.row(a.colIdx()[e]),
                               dim * sizeof(Float));
                dev.flops(2 * dim);
            }

            // Write-back at the last EG of each row within the unit:
            // register-reduced rows store plainly; split rows merge
            // their partial atomically.
            for (std::size_t gi = unit.egBegin; gi < unit.egEnd; ++gi) {
                const EdgeGroup &eg = groups[gi];
                const bool row_ends = gi + 1 == unit.egEnd ||
                                      groups[gi + 1].row != eg.row;
                if (!row_ends)
                    continue;
                if (split[eg.row])
                    dev.globalAtomicAccum(warp, y.row(eg.row),
                                          dim * sizeof(Float));
                else
                    dev.globalWrite(warp, y.row(eg.row),
                                    dim * sizeof(Float));
            }
        }
    });
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
