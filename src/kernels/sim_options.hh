/**
 * @file
 * Options shared by all simulated kernels (baselines and MaxK-GNN).
 */

#ifndef MAXK_KERNELS_SIM_OPTIONS_HH
#define MAXK_KERNELS_SIM_OPTIONS_HH

#include <cstdint>
#include <string>

#include "gpusim/device.hh"

namespace maxk
{

/** Per-launch simulation knobs. */
struct SimOptions
{
    /** Device the kernel runs on. */
    gpusim::DeviceConfig device = gpusim::DeviceConfig::a100();

    /**
     * When false, cache models are bypassed (every request is DRAM
     * traffic). Functional results are identical; only stats differ.
     */
    bool simulateCaches = true;

    /**
     * w — the maximum workload units per Edge Group (Sec. 4.3). The
     * paper's kernels use one warp-iteration worth of edges.
     */
    std::uint32_t workloadCap = 32;

    /**
     * Relative efficiency of the kernel implementation (1.0 = fully
     * tuned). The GNNAdvisor baseline models its measured gap to
     * cuSPARSE with a value < 1.
     */
    double efficiency = 1.0;

    /**
     * Ablation: when false, the forward SpGEMM skips the shared-memory
     * accumulation buffer and scatter-accumulates each product directly
     * into global memory (the design the paper's buffer avoids).
     */
    bool spgemmSharedBuffer = true;

    /**
     * Ablation: when false, the backward SSpMM skips the dense-row
     * prefetch and gathers dX_l elements straight from global memory
     * through sp_index (uncoalesced).
     */
    bool sspmmPrefetch = true;

    /**
     * Select the fused MaxK->SpGEMM forward in the simulated pipelines
     * (profileEpoch, benches): pivot-select, CBSR emit and the row-wise
     * product run as one launch, so sp_data never round-trips through
     * global memory (core/spgemm_forward.hh, spgemmForwardFused).
     * Functional output is bitwise-identical to the unfused pipeline.
     */
    bool fusedForward = false;

    /**
     * SpMM kernel variant for baseline/dense aggregation launches:
     * "" or "default" = the static row-wise default, "auto" = the
     * adaptive per-launch selector (kernels/selector.hh), anything else
     * a registered variant name (kernels/registry.hh). Functional
     * results are identical for every value; only the simulated
     * schedule — and therefore the reported stats — changes.
     */
    std::string kernelVariant;

    /**
     * Host worker threads for the row-parallel kernel loops. 0 = use
     * the process default (MAXK_THREADS env var, else serial). Results
     * and simulated stats are bitwise-identical for every value — the
     * loops use static range partitioning and ordered shard replay
     * (see common/parallel.hh).
     */
    std::uint32_t threads = 0;
};

} // namespace maxk

#endif // MAXK_KERNELS_SIM_OPTIONS_HH
