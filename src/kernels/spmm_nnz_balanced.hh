/**
 * @file
 * Nnz-balanced SpMM (the Ge-SpMM "nnzbalance" schedule): work units own
 * a fixed budget of nonzeros instead of a fixed set of rows, so hub rows
 * spread across many units and no warp inherits a whole "evil row".
 *
 * Two structural effects distinguish it from the row-wise baseline in
 * the traffic model:
 *
 *  - CSR metadata (values + column indices) streams in one contiguous
 *    request per unit rather than one per row, so the 32-byte sector
 *    rounding amortises across row boundaries — a real win on
 *    low-degree graphs where a 2-edge row otherwise charges two full
 *    sectors for 16 useful bytes;
 *  - rows whose edges span more than one unit pay a deterministic
 *    cross-row partial merge: a zero-fill pass plus one atomic
 *    accumulation per touching unit, instead of a single plain store.
 *
 * Unit planning reuses the Edge-Group partition (graph/edge_groups):
 * units are contiguous EG runs that close early at row boundaries, so
 * only rows longer than the unit budget ever split.
 */

#ifndef MAXK_KERNELS_SPMM_NNZ_BALANCED_HH
#define MAXK_KERNELS_SPMM_NNZ_BALANCED_HH

#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Nonzeros per work unit, as a multiple of SimOptions::workloadCap. */
constexpr std::uint32_t kNnzUnitGroups = 4;

/** Y = A * X with the nnz-balanced kernel. Bitwise-identical to
 *  spmmReference at any MAXK_THREADS. */
gpusim::KernelStats spmmNnzBalanced(const CsrGraph &a, const Matrix &x,
                                    Matrix &y, const SimOptions &opt = {});

} // namespace maxk

#endif // MAXK_KERNELS_SPMM_NNZ_BALANCED_HH
