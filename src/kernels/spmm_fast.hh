/**
 * @file
 * Functional fast-path SpMM loops (no device simulation, float
 * accumulation) shared by every registered forward variant.
 *
 * The training loop accumulates in fp32 — that is the numeric contract
 * the convergence tests pin — while the simulated kernels accumulate in
 * double to stay bitwise-identical to spmmReference. Keeping the fast
 * loops here lets the registry offer both entry points per variant: the
 * schedule (row-wise / nnz-balanced / row-caching) only changes the
 * traffic model, never the per-row fp32 fold order, so all forward
 * variants share these exact loops and training numerics are invariant
 * under kernel selection.
 */

#ifndef MAXK_KERNELS_SPMM_FAST_HH
#define MAXK_KERNELS_SPMM_FAST_HH

#include "graph/csr.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** out = A * x, fp32 accumulation, row-parallel. Bitwise-identical at
 *  any MAXK_THREADS (one writer per output row). */
void spmmRowWiseFast(const CsrGraph &a, const Matrix &x, Matrix &out);

/** out = A^T * x, fp32 accumulation, without materialising the
 *  transpose. Bitwise-identical at any MAXK_THREADS (serial edge-order
 *  fold, gathered over the stable transpose when parallel). */
void spmmTransposedFast(const CsrGraph &a, const Matrix &x, Matrix &out);

} // namespace maxk

#endif // MAXK_KERNELS_SPMM_FAST_HH
