/**
 * @file
 * Row-caching SpMM (the Ge-SpMM "rowcaching" schedule): each thread
 * block processes a tile of consecutive adjacency rows and stages the
 * distinct dense X rows the tile references in shared memory, so a
 * neighbour shared by several rows of the tile is fetched from global
 * memory once instead of once per nonzero.
 *
 * The traffic model charges the first occurrence of a column within a
 * tile as a global read plus a shared-memory store; repeat occurrences
 * hit the staged copy (shared-memory traffic only). The staging budget
 * is bounded by the device's shared memory per SM, so wide feature
 * dimensions cap how many rows a tile can hold on-chip — columns beyond
 * the budget fall back to direct global reads. On graphs with
 * neighbourhood overlap between consecutive rows (lattices, clustered
 * orderings) DRAM traffic collapses; on scrambled graphs the staging is
 * pure overhead — exactly the trade the adaptive selector arbitrates.
 */

#ifndef MAXK_KERNELS_SPMM_ROW_CACHING_HH
#define MAXK_KERNELS_SPMM_ROW_CACHING_HH

#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Nonzeros per tile, as a multiple of SimOptions::workloadCap. */
constexpr std::uint32_t kRowCacheTileGroups = 8;

/** Sustained-throughput derate for the staged schedule: the
 *  stage/consume barriers serialise the block and the shared-memory
 *  footprint costs occupancy, so the roofline bound is not reached.
 *  Applied when SimOptions::efficiency is left at its default 1.0. */
constexpr double kRowCachingEfficiency = 0.92;

/** Y = A * X with the row-caching kernel. Bitwise-identical to
 *  spmmReference at any MAXK_THREADS. */
gpusim::KernelStats spmmRowCaching(const CsrGraph &a, const Matrix &x,
                                   Matrix &y, const SimOptions &opt = {});

} // namespace maxk

#endif // MAXK_KERNELS_SPMM_ROW_CACHING_HH
