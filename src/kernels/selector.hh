/**
 * @file
 * Adaptive per-launch kernel selection from cheap graph features.
 *
 * The selector reads only DegreeStats (already cached on the graph) plus
 * the launch shape (dim, k) and the device's shared-memory budget — no
 * trial runs, no per-edge work — and picks the SpMM schedule the traffic
 * model favours:
 *
 *  - near-regular graphs (tiny gini / stdDegree) keep neighbourhood
 *    overlap between consecutive rows, so the row-caching schedule
 *    collapses dense-row traffic — provided the shared-memory budget
 *    actually fits a useful number of staged rows at this width;
 *  - extreme-hub graphs (stdDegree many multiples of avgDegree) see the
 *    same collapse from the other direction: the hubs' dense rows recur
 *    inside every tile, so staging them absorbs most of the traffic;
 *  - low average degree makes per-row metadata sector rounding the
 *    dominant waste, which the nnz-balanced schedule amortises;
 *  - everything else stays on the row-wise (cuSPARSE-like) default —
 *    mid-skew power-law and uniform high-degree graphs have too little
 *    tile-local reuse for the staging barriers to pay.
 *
 * Thresholds are pinned by the committed bench/baselines/adaptive.json
 * gate: bench_adaptive sweeps the corpus and hard-fails if a pick is
 * ever slower (simulated seconds or DRAM bytes) than the static
 * default.
 */

#ifndef MAXK_KERNELS_SELECTOR_HH
#define MAXK_KERNELS_SELECTOR_HH

#include <cstdint>
#include <string>

#include "gpusim/device.hh"
#include "graph/stats.hh"
#include "kernels/registry.hh"

namespace maxk::kernels
{

/** Average degree at or below which metadata amortisation dominates. */
constexpr double kSelectLowDegree = 8.0;

/** Gini coefficient below which a graph counts as near-regular. */
constexpr double kSelectRegularGini = 0.05;

/** stdDegree/avgDegree bound accompanying the gini regularity test. */
constexpr double kSelectRegularCv = 0.25;

/** stdDegree/avgDegree above which hub rows dominate the edge mass. */
constexpr double kSelectHubCv = 5.0;

/** Minimum staged rows for the row cache to be worth its barriers. */
constexpr std::size_t kSelectMinStagedRows = 16;

/** A selector decision: the chosen variant plus its justification. */
struct KernelChoice
{
    const KernelVariant *variant; //!< never null
    std::string reason;           //!< human-readable feature trace
};

/**
 * Pick the forward SpMM variant for one launch.
 *
 * @param s   cached degree statistics of the adjacency
 * @param dim dense feature width of the launch
 * @param k   MaxK width (0 = dense operand); bounds the effective row
 *            width the row cache must hold
 * @param dev device, for the shared-memory staging budget
 */
KernelChoice selectSpmmVariant(const DegreeStats &s, std::size_t dim,
                               std::uint32_t k,
                               const gpusim::DeviceConfig &dev);

} // namespace maxk::kernels

#endif // MAXK_KERNELS_SELECTOR_HH
