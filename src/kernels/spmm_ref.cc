#include "kernels/spmm_ref.hh"

#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/transpose_gather.hh"

namespace maxk
{

void
spmmReference(const CsrGraph &a, const Matrix &x, Matrix &y)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spmmReference: X row count != |V|");
    const std::size_t dim = x.cols();
    y.resize(a.numNodes(), dim);
    parallelFor(0, a.numNodes(), 16,
                [&](std::uint32_t, std::size_t begin, std::size_t end) {
                    std::vector<double> acc(dim);
                    for (std::size_t r = begin; r < end; ++r) {
                        const NodeId i = static_cast<NodeId>(r);
                        std::fill(acc.begin(), acc.end(), 0.0);
                        for (EdgeId e = a.rowPtr()[i];
                             e < a.rowPtr()[i + 1]; ++e) {
                            const NodeId j = a.colIdx()[e];
                            const double v = a.values()[e];
                            const Float *xr = x.row(j);
                            for (std::size_t d = 0; d < dim; ++d)
                                acc[d] += v * xr[d];
                        }
                        Float *yr = y.row(i);
                        for (std::size_t d = 0; d < dim; ++d)
                            yr[d] = static_cast<Float>(acc[d]);
                    }
                });
}

void
spmmTransposedReference(const CsrGraph &a, const Matrix &x, Matrix &y)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spmmTransposedReference: X row count != |V|");
    const std::size_t dim = x.cols();
    y.resize(a.numNodes(), dim);
    y.setZero();
    const std::uint32_t threads = resolveThreads(0);
    if (threads <= 1) {
        for (NodeId i = 0; i < a.numNodes(); ++i) {
            const Float *xr = x.row(i);
            for (EdgeId e = a.rowPtr()[i]; e < a.rowPtr()[i + 1]; ++e) {
                const NodeId j = a.colIdx()[e];
                const Float v = a.values()[e];
                Float *yr = y.row(j);
                for (std::size_t d = 0; d < dim; ++d)
                    yr[d] += v * xr[d];
            }
        }
        return;
    }

    // Scatter-shaped: bitwise-deterministic gather over the stable
    // transpose (see core/transpose_gather.hh).
    gatherTransposedDense(a, x, y, threads);
}

} // namespace maxk
