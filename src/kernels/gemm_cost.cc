#include "kernels/gemm_cost.hh"

#include <algorithm>

namespace maxk
{

double
gemmSimSeconds(std::uint64_t m, std::uint64_t k, std::uint64_t n,
               const gpusim::DeviceConfig &cfg, double efficiency)
{
    const double flops = 2.0 * static_cast<double>(m) * k * n;
    // Tiled GEMM streams A and B roughly once per tile wave and writes C
    // once; for the skinny GNN shapes (m >> k, n) the A matrix dominates.
    const double bytes =
        4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
               2.0 * static_cast<double>(m) * n);
    const double t_compute = flops / (cfg.peakTf32Tflops * 1e12);
    const double t_memory = bytes / cfg.hbmBytesPerSec();
    return cfg.launchOverheadUs * 1e-6 +
           std::max(t_compute, t_memory) / efficiency;
}

double
elementwiseSimSeconds(std::uint64_t elems, const gpusim::DeviceConfig &cfg)
{
    const double bytes = 8.0 * static_cast<double>(elems); // read + write
    return cfg.launchOverheadUs * 1e-6 + bytes / cfg.hbmBytesPerSec();
}

} // namespace maxk
