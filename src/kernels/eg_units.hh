/**
 * @file
 * Shared work-unit planning for the nnz-balanced and row-caching SpMM
 * variants: pack consecutive Edge Groups (graph/edge_groups) into
 * contiguous runs with a fixed nonzero budget. Runs close early at a
 * row boundary whenever the whole next row would fit in a fresh run but
 * not in the remainder, so only rows longer than the budget ever split
 * across runs — those are the rows that need the deterministic
 * cross-run partial merge.
 */

#ifndef MAXK_KERNELS_EG_UNITS_HH
#define MAXK_KERNELS_EG_UNITS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "graph/edge_groups.hh"

namespace maxk::kernels
{

/** One work unit: a contiguous run [egBegin, egEnd) of Edge Groups. */
struct EgUnit
{
    std::size_t egBegin;
    std::size_t egEnd;
};

/** Greedy fixed-nnz packing of the EG sequence (see file comment). */
inline std::vector<EgUnit>
planEgUnits(const CsrGraph &a, const std::vector<EdgeGroup> &groups,
            EdgeId unit_nnz)
{
    std::vector<EgUnit> units;
    std::size_t start = 0;
    EdgeId cur = 0;
    auto close = [&](std::size_t end_gi) {
        if (end_gi > start) {
            units.push_back(EgUnit{start, end_gi});
            start = end_gi;
            cur = 0;
        }
    };
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const EdgeGroup &eg = groups[gi];
        if (eg.begin == a.rowPtr()[eg.row]) {
            const EdgeId row_nnz =
                a.rowPtr()[eg.row + 1] - a.rowPtr()[eg.row];
            if (cur > 0 &&
                cur + std::min<EdgeId>(row_nnz, unit_nnz) > unit_nnz)
                close(gi);
        }
        cur += eg.end - eg.begin;
        if (cur >= unit_nnz)
            close(gi + 1);
    }
    close(groups.size());
    return units;
}

/** Flag the rows whose EGs straddle a unit boundary (1 = split). */
inline std::vector<std::uint8_t>
markSplitRows(const std::vector<EdgeGroup> &groups,
              const std::vector<EgUnit> &units, NodeId num_nodes)
{
    std::vector<std::uint8_t> split(num_nodes, 0);
    for (std::size_t u = 0; u + 1 < units.size(); ++u) {
        const NodeId last = groups[units[u].egEnd - 1].row;
        if (groups[units[u + 1].egBegin].row == last)
            split[last] = 1;
    }
    return split;
}

} // namespace maxk::kernels

#endif // MAXK_KERNELS_EG_UNITS_HH
