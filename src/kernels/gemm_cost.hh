/**
 * @file
 * Roofline cost model for dense GEMM (the Linear stages of every GNN
 * layer). Linear layers are not the paper's contribution — they appear in
 * the epoch-time composition of Fig. 1 and Fig. 9, where the paper runs
 * cuBLAS. The model charges max(compute, memory) like the kernel
 * simulator, with a fixed efficiency factor representing cuBLAS tuning.
 */

#ifndef MAXK_KERNELS_GEMM_COST_HH
#define MAXK_KERNELS_GEMM_COST_HH

#include <cstdint>

#include "gpusim/device.hh"

namespace maxk
{

/**
 * Simulated latency of an (m x k) * (k x n) GEMM, in seconds. Uses the
 * TF32 tensor-core peak — the path PyTorch's matmul takes on an A100,
 * which is how the paper's Linear stages run — derated by `efficiency`
 * for the skinny shapes GNN layers produce.
 */
double gemmSimSeconds(std::uint64_t m, std::uint64_t k, std::uint64_t n,
                      const gpusim::DeviceConfig &cfg,
                      double efficiency = 0.5);

/** Simulated latency of an element-wise op over `elems` fp32 values
 *  (ReLU, bias add, dropout mask). Bandwidth-bound: read + write. */
double elementwiseSimSeconds(std::uint64_t elems,
                             const gpusim::DeviceConfig &cfg);

} // namespace maxk

#endif // MAXK_KERNELS_GEMM_COST_HH
