/**
 * @file
 * Row-wise-product SpMM baseline, modelling cuSPARSE CsrMM — the kernel
 * DGL dispatches to and the primary baseline of Fig. 8 / Table 2.
 *
 * Access pattern (per the paper's Sec. 1/4.3 characterisation): each
 * nonzero (i, j) fetches the full dense row X[j, :] from global memory
 * (dim_origin * 4 bytes), so feature traffic scales as 4*dim*nnz; partial
 * sums live in registers and each output row is written once, coalesced.
 * There is no shared-memory staging and no atomics.
 */

#ifndef MAXK_KERNELS_SPMM_ROW_WISE_HH
#define MAXK_KERNELS_SPMM_ROW_WISE_HH

#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/**
 * Y = A * X with the cuSPARSE-like row-wise kernel.
 *
 * @param a   adjacency in CSR
 * @param x   dense features (|V| x dim)
 * @param y   output, resized to |V| x dim
 * @param opt simulation options
 * @return simulated launch statistics
 */
gpusim::KernelStats spmmRowWise(const CsrGraph &a, const Matrix &x,
                                Matrix &y, const SimOptions &opt = {});

} // namespace maxk

#endif // MAXK_KERNELS_SPMM_ROW_WISE_HH
