#include "kernels/selector.hh"

#include <cstdio>

#include "tensor/matrix.hh"

namespace maxk::kernels
{

KernelChoice
selectSpmmVariant(const DegreeStats &s, std::size_t dim, std::uint32_t k,
                  const gpusim::DeviceConfig &dev)
{
    char buf[160];

    // Effective dense-row width the schedules move per neighbour: MaxK
    // operands carry k values per row, dense operands the full dim.
    const std::size_t eff_dim = k > 0 && k < dim ? k : dim;
    const std::size_t row_bytes = eff_dim * sizeof(Float);
    const std::size_t staged_rows =
        row_bytes ? dev.sharedMemPerSm / 2 / row_bytes : 0;

    const double cv =
        s.avgDegree > 0.0 ? s.stdDegree / s.avgDegree : 0.0;
    const bool regular =
        s.gini < kSelectRegularGini && cv < kSelectRegularCv;

    if (regular && s.avgDegree > 0.0 && staged_rows >= kSelectMinStagedRows) {
        std::snprintf(buf, sizeof buf,
                      "near-regular degrees (gini=%.3f cv=%.2f) with %zu "
                      "stageable rows: row reuse pays for staging",
                      s.gini, cv, staged_rows);
        return {&kernelVariantOrDie("spmm_row_caching"), buf};
    }

    if (cv >= kSelectHubCv && staged_rows >= kSelectMinStagedRows) {
        std::snprintf(buf, sizeof buf,
                      "hub-dominated degrees (cv=%.1f >= %.1f): staged hub "
                      "rows recur in every tile",
                      cv, kSelectHubCv);
        return {&kernelVariantOrDie("spmm_row_caching"), buf};
    }

    if (s.avgDegree > 0.0 && s.avgDegree <= kSelectLowDegree) {
        std::snprintf(buf, sizeof buf,
                      "low average degree (%.1f <= %.1f): per-row metadata "
                      "sector rounding dominates, amortise it",
                      s.avgDegree, kSelectLowDegree);
        return {&kernelVariantOrDie("spmm_nnz_balanced"), buf};
    }

    std::snprintf(buf, sizeof buf,
                  "irregular high-degree graph (avg=%.1f gini=%.3f): "
                  "row-wise register accumulation is unbeaten",
                  s.avgDegree, s.gini);
    return {&defaultSpmmVariant(), buf};
}

} // namespace maxk::kernels
