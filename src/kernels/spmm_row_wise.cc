#include "kernels/spmm_row_wise.hh"

#include <vector>

#include "common/logging.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
spmmRowWise(const CsrGraph &a, const Matrix &x, Matrix &y,
            const SimOptions &opt)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spmmRowWise: X row count != |V|");
    const std::size_t dim = x.cols();
    y.resize(a.numNodes(), dim);

    gpusim::KernelContext ctx(opt.device, "spmm_row_wise",
                              opt.simulateCaches);
    ctx.beginPhase("compute");

    std::vector<double> acc(dim);
    std::uint64_t warp = 0;
    for (NodeId i = 0; i < a.numNodes(); ++i, ++warp) {
        const EdgeId begin = a.rowPtr()[i], end = a.rowPtr()[i + 1];
        if (begin == end) {
            // Row of zeros still writes its (zero) output slice.
            Float *yr = y.row(i);
            for (std::size_t d = 0; d < dim; ++d)
                yr[d] = 0.0f;
            ctx.globalWrite(warp, y.row(i), dim * sizeof(Float));
            continue;
        }

        // CSR metadata for the row: edge values + column indices.
        ctx.globalReadStreaming(warp, &a.values()[begin],
                       (end - begin) * sizeof(Float));
        ctx.globalReadStreaming(warp, &a.colIdx()[begin],
                       (end - begin) * sizeof(NodeId));

        std::fill(acc.begin(), acc.end(), 0.0);
        for (EdgeId e = begin; e < end; ++e) {
            const NodeId j = a.colIdx()[e];
            const Float v = a.values()[e];
            const Float *xr = x.row(j);
            // Full dense row fetch per nonzero: the 4*dim*nnz term.
            ctx.globalRead(warp, xr, dim * sizeof(Float));
            ctx.flops(2 * dim);
            for (std::size_t d = 0; d < dim; ++d)
                acc[d] += static_cast<double>(v) * xr[d];
        }

        Float *yr = y.row(i);
        for (std::size_t d = 0; d < dim; ++d)
            yr[d] = static_cast<Float>(acc[d]);
        ctx.globalWrite(warp, yr, dim * sizeof(Float));
    }
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
