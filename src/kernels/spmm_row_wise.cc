#include "kernels/spmm_row_wise.hh"

#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
spmmRowWise(const CsrGraph &a, const Matrix &x, Matrix &y,
            const SimOptions &opt)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spmmRowWise: X row count != |V|");
    const std::size_t dim = x.cols();
    // ensureShape: every row (empty ones included) stores its full
    // output slice below, so a shape-matching relaunch neither
    // reallocates nor pre-zeroes.
    y.ensureShape(a.numNodes(), dim);

    gpusim::KernelContext ctx(opt.device, "spmm_row_wise",
                              opt.simulateCaches);
    ctx.beginPhase("compute");

    // Row-parallel: each output row is owned by exactly one chunk, so
    // the numeric path needs no reduction and matches the serial sweep
    // bitwise; accounting shards replay in row order.
    const auto chunks =
        splitRange(0, a.numNodes(), 16, resolveThreads(opt.threads));
    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t,
                                        IndexRange rows) {
        std::vector<double> acc(dim);
        for (std::size_t r = rows.begin; r < rows.end; ++r) {
            const NodeId i = static_cast<NodeId>(r);
            const std::uint64_t warp = r; // one warp per row, id == row
            const EdgeId begin = a.rowPtr()[i], end = a.rowPtr()[i + 1];
            if (begin == end) {
                // Row of zeros still writes its (zero) output slice.
                Float *yr = y.row(i);
                for (std::size_t d = 0; d < dim; ++d)
                    yr[d] = 0.0f;
                dev.globalWrite(warp, y.row(i), dim * sizeof(Float));
                continue;
            }

            // CSR metadata for the row: edge values + column indices.
            dev.globalReadStreaming(warp, &a.values()[begin],
                                    (end - begin) * sizeof(Float));
            dev.globalReadStreaming(warp, &a.colIdx()[begin],
                                    (end - begin) * sizeof(NodeId));

            std::fill(acc.begin(), acc.end(), 0.0);
            for (EdgeId e = begin; e < end; ++e) {
                const NodeId j = a.colIdx()[e];
                const Float v = a.values()[e];
                const Float *xr = x.row(j);
                // Full dense row fetch per nonzero: the 4*dim*nnz term.
                dev.globalRead(warp, xr, dim * sizeof(Float));
                dev.flops(2 * dim);
                for (std::size_t d = 0; d < dim; ++d)
                    acc[d] += static_cast<double>(v) * xr[d];
            }

            Float *yr = y.row(i);
            for (std::size_t d = 0; d < dim; ++d)
                yr[d] = static_cast<Float>(acc[d]);
            dev.globalWrite(warp, yr, dim * sizeof(Float));
        }
    });
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
