/**
 * @file
 * Golden reference SpMM (no simulation): Y = A * X computed with plain
 * loops in double precision accumulation. Every simulated kernel's
 * functional output is validated against this in the test suite.
 */

#ifndef MAXK_KERNELS_SPMM_REF_HH
#define MAXK_KERNELS_SPMM_REF_HH

#include "graph/csr.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Y = A * X. Y is resized to (numNodes x X.cols()). */
void spmmReference(const CsrGraph &a, const Matrix &x, Matrix &y);

/** Y = A^T * X without materialising the transpose. */
void spmmTransposedReference(const CsrGraph &a, const Matrix &x, Matrix &y);

} // namespace maxk

#endif // MAXK_KERNELS_SPMM_REF_HH
