/**
 * @file
 * GNNAdvisor-like SpMM baseline (Wang et al., OSDI'21), the second
 * comparison point of Fig. 8 / Fig. 9.
 *
 * GNNAdvisor partitions each row's nonzeros into fixed-size neighbour
 * groups, assigns groups to warps, stages partial sums in shared memory
 * and atomically merges them into the output — trading the row-wise
 * kernel's register accumulation for balance. It still fetches the full
 * dense row X[j, :] per nonzero, and pays neighbour-group metadata reads
 * plus atomic write-back; the paper measures it ~1.3-1.4x slower than
 * cuSPARSE on high-degree graphs, which this model reproduces via its
 * extra traffic plus an efficiency factor.
 *
 * The functional output is bitwise-identical to spmmReference at any
 * MAXK_THREADS: each row's partial sums accumulate in one double buffer
 * across its neighbour groups (row-aligned chunks keep them on one
 * worker) and are cast once at the row's last group.
 */

#ifndef MAXK_KERNELS_SPMM_GNNA_HH
#define MAXK_KERNELS_SPMM_GNNA_HH

#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "graph/edge_groups.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Default efficiency factor modelling GNNAdvisor's tuning gap. */
constexpr double kGnnaEfficiency = 0.78;

/**
 * Y = A * X with the GNNAdvisor-like neighbour-group kernel.
 *
 * @param part pre-built neighbour-group partition (reused across calls,
 *             as GNNAdvisor builds it once during preprocessing)
 */
gpusim::KernelStats spmmGnna(const CsrGraph &a,
                             const EdgeGroupPartition &part,
                             const Matrix &x, Matrix &y,
                             SimOptions opt = {});

} // namespace maxk

#endif // MAXK_KERNELS_SPMM_GNNA_HH
