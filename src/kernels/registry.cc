#include "kernels/registry.hh"

#include <array>
#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/trace.hh"
#include "kernels/selector.hh"
#include "kernels/spmm_fast.hh"
#include "kernels/spmm_gnna.hh"
#include "kernels/spmm_nnz_balanced.hh"
#include "kernels/spmm_outer_naive.hh"
#include "kernels/spmm_ref.hh"
#include "kernels/spmm_row_caching.hh"
#include "kernels/spmm_row_wise.hh"

namespace maxk::kernels
{

namespace
{

gpusim::KernelStats
runRef(const CsrGraph &a, const Matrix &x, Matrix &y, const SimOptions &)
{
    spmmReference(a, x, y);
    gpusim::KernelStats s;
    s.kernel = "spmm_ref";
    return s;
}

gpusim::KernelStats
runGnna(const CsrGraph &a, const Matrix &x, Matrix &y, const SimOptions &opt)
{
    // GNNAdvisor preprocesses its neighbour-group partition once per
    // graph; the cached partition models exactly that.
    return spmmGnna(a, a.edgeGroupsCached(opt.workloadCap), x, y, opt);
}

void
fastRef(const CsrGraph &a, const Matrix &x, Matrix &y)
{
    spmmReference(a, x, y);
}

constexpr std::array<KernelVariant, 6> kVariants{{
    {"spmm_ref",
     "golden reference (double accumulation, no device model)",
     /*simulated=*/false, /*transposed=*/false, /*selectable=*/false,
     &runRef, &fastRef},
    {"spmm_row_wise",
     "cuSPARSE-like row-wise product: register accumulation, one "
     "coalesced store per row",
     true, false, true, &spmmRowWise, &spmmRowWiseFast},
    {"spmm_gnna",
     "GNNAdvisor-like neighbour groups: shared-memory partials, atomic "
     "merge, efficiency derate",
     true, false, true, &runGnna, &spmmRowWiseFast},
    {"spmm_nnz_balanced",
     "fixed nonzeros per work unit: amortised metadata streams, atomic "
     "merge only for split hub rows",
     true, false, true, &spmmNnzBalanced, &spmmRowWiseFast},
    {"spmm_row_caching",
     "tile-local shared-memory staging of dense rows: reuse collapses "
     "DRAM traffic on regular graphs",
     true, false, true, &spmmRowCaching, &spmmRowWiseFast},
    {"spmm_outer_naive",
     "naive outer-product Y = A^T * X: scatter atomics per nonzero "
     "(backward-shaped baseline)",
     true, true, false, &spmmOuterNaive, &spmmTransposedFast},
}};

} // namespace

std::span<const KernelVariant>
kernelRegistry()
{
    return {kVariants.data(), kVariants.size()};
}

const KernelVariant *
findKernelVariant(std::string_view name)
{
    for (const KernelVariant &v : kVariants)
        if (v.name == name)
            return &v;
    return nullptr;
}

const KernelVariant &
kernelVariantOrDie(std::string_view name)
{
    const KernelVariant *v = findKernelVariant(name);
    if (v)
        return *v;
    std::string known;
    for (const KernelVariant &kv : kVariants) {
        if (!known.empty())
            known += ", ";
        known += kv.name;
    }
    fatal("unknown kernel variant '" + std::string(name) +
          "' (known: " + known + ")");
}

const KernelVariant &
defaultSpmmVariant()
{
    return kVariants[1]; // spmm_row_wise
}

namespace
{

/**
 * Telemetry hook for dispatch decisions: a zero-duration trace marker
 * carrying "variant: reason" as its span arg, a per-variant counter,
 * and the total. Pure observation — the decision itself never reads
 * telemetry state (the bitwise-neutrality contract).
 */
void
noteDispatch(const KernelVariant &v, const std::string &why)
{
    if (!telemetry::armed())
        return;
    static const telemetry::Phase phase("kernel.dispatch");
    const std::string name(v.name);
    telemetry::traceInstant(phase, name + ": " + why);
    telemetry::counterAdd("kernel.dispatch." + name, 1);
}

} // namespace

const KernelVariant &
resolveSpmmVariant(std::string_view requested, const CsrGraph &g,
                   std::size_t dim, std::uint32_t k, const SimOptions &opt,
                   std::string *reason)
{
    if (requested.empty() || requested == "default") {
        if (reason)
            *reason = "static default";
        noteDispatch(defaultSpmmVariant(), "static default");
        return defaultSpmmVariant();
    }
    if (requested == "auto") {
        const KernelChoice choice =
            selectSpmmVariant(g.degreeStatsCached(), dim, k, opt.device);
        if (reason)
            *reason = choice.reason;
        noteDispatch(*choice.variant, choice.reason);
        return *choice.variant;
    }
    const KernelVariant &v = kernelVariantOrDie(requested);
    checkInvariant(!v.transposed,
                   "resolveSpmmVariant: transposed variant requested for "
                   "a forward launch");
    if (reason)
        *reason = "explicitly configured";
    noteDispatch(v, "explicitly configured");
    return v;
}

} // namespace maxk::kernels
