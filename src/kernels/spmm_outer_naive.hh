/**
 * @file
 * Naive outer-product SpMM: the backward-pass baseline of Sec. 4.3's
 * traffic comparison ("Compared to a naive outer product-based SpMM...").
 *
 * Computes Y = A^T * X by walking columns of A^T (rows of A, since CSR(A)
 * is CSC(A^T)) and scattering e_ij * X[i, :] into output rows WITHOUT the
 * dense-row prefetch or CBSR compression of the MaxK-GNN SSpMM: every
 * nonzero re-reads the full dense input row from global memory and
 * atomically accumulates a full dense output row.
 */

#ifndef MAXK_KERNELS_SPMM_OUTER_NAIVE_HH
#define MAXK_KERNELS_SPMM_OUTER_NAIVE_HH

#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Y = A^T * X with the naive outer-product kernel. */
gpusim::KernelStats spmmOuterNaive(const CsrGraph &a, const Matrix &x,
                                   Matrix &y, const SimOptions &opt = {});

} // namespace maxk

#endif // MAXK_KERNELS_SPMM_OUTER_NAIVE_HH
