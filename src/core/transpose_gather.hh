/**
 * @file
 * Shared gather-form implementations of the scatter-shaped kernels.
 *
 * Every scatter loop in the codebase ("for each source row i, for each
 * edge (i, j): out[j] += v * f(x[i])") is parallelised by rewriting it
 * as a gather over the *stable* transpose of the adjacency matrix:
 * destination row j folds its in-edge contributions in exactly the
 * order the serial scatter applied them (CsrGraph::transposed() is a
 * counting sort over the original edge sweep, so per-destination source
 * order is preserved). Each output row then has a single writer doing a
 * plain left-to-right fp32 fold — bitwise-identical to the serial
 * scatter for ANY thread count, which per-thread partial buffers (which
 * re-associate the sums) could not guarantee.
 *
 * This invariant lives here, in one place, so a change to how the
 * transpose is obtained cannot fix one kernel and silently break
 * another. The transpose itself comes from CsrGraph::transposeCached():
 * built lazily on the first scatter-shaped launch, reused by every
 * subsequent one, and invalidated when edge values mutate.
 */

#ifndef MAXK_CORE_TRANSPOSE_GATHER_HH
#define MAXK_CORE_TRANSPOSE_GATHER_HH

#include <cstdint>

#include "core/cbsr.hh"
#include "graph/csr.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/**
 * out.row(j) += v_e * x.row(i) for every edge (i, j) of `a`, folded in
 * serial edge order. `out` must already be sized (numNodes x x.cols())
 * and hold the initial values (normally zeros).
 *
 * @param threads explicit worker count; 0 = process default
 */
void gatherTransposedDense(const CsrGraph &a, const Matrix &x,
                           Matrix &out, std::uint32_t threads = 0);

/**
 * dxs.dataRow(j)[kk] += v_e * dxl.row(i)[dxs.indexAt(j, kk)] for every
 * edge (i, j) of `a`, folded in serial edge order — the SSpMM /
 * CBSR-backward accumulation. `dxs` carries the pattern and the initial
 * (normally zeroed) data.
 */
void gatherTransposedCbsr(const CsrGraph &a, const Matrix &dxl,
                          CbsrMatrix &dxs, std::uint32_t threads = 0);

} // namespace maxk

#endif // MAXK_CORE_TRANSPOSE_GATHER_HH
