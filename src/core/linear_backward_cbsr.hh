/**
 * @file
 * CBSR-aware backward kernels for the Linear stage (ISSUE 4 tentpole).
 *
 * After a MaxK layer the upstream gradient dY arrives in CBSR form: the
 * backward SSpMM writes exactly k values per row at the forward sparsity
 * pattern (Sec. 3.1 — the gradient reuses the forward mask). The dense
 * path decompressed that gradient into an N x dim_origin matrix purely
 * so the dense GEMMs could consume it, moving dim_origin/k times more
 * bytes than the information it carries. These kernels consume
 * sp_data/sp_index directly:
 *
 *   dW = X^T · scatter(dY)      (cbsrGemmTransA)
 *   db = colsum(scatter(dY))    (cbsrColumnSums)
 *   dX = scatter(dY) · W^T      (cbsrGemmTransB)
 *
 * All three are bitwise-identical to running the dense tensor/ops.hh
 * kernels on decompress(dY): per output element the same contributions
 * fold in the same order, and the skipped terms are exact ±0 products
 * that cannot change an IEEE sum under round-to-nearest (the
 * equivalence suite asserts equals(), not near()).
 *
 * Finiteness precondition: the ±0-product argument requires finite X
 * and W. A ±inf/NaN entry there makes the dense path fold 0*inf = NaN
 * into slots outside the CBSR pattern, which these kernels (correctly)
 * never touch — the sparse result stays finite where the dense one
 * NaN-poisons. Training keeps X/W finite (and pivotSelect handles
 * non-finite activations upstream), so the divergence only matters if
 * the run has already blown up.
 */

#ifndef MAXK_CORE_LINEAR_BACKWARD_CBSR_HH
#define MAXK_CORE_LINEAR_BACKWARD_CBSR_HH

#include <cstdint>

#include "core/cbsr.hh"
#include "gpusim/device.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/**
 * dw = x^T * scatter(ds): x is (N x in), ds is CBSR over the out
 * dimension, dw is resized to (in x out). Row-parallel over the input
 * dimension (each worker owns whole dw rows), bitwise-deterministic at
 * any thread count.
 */
void cbsrGemmTransA(const Matrix &x, const CbsrMatrix &ds, Matrix &dw);

/** out = column sums of scatter(ds), resized to 1 x dimOrigin. */
void cbsrColumnSums(const CbsrMatrix &ds, Matrix &out);

/**
 * dx = scatter(ds) * w^T: w is (in x out), dx is resized to (N x in).
 * Row-parallel over N, bitwise-deterministic at any thread count.
 */
void cbsrGemmTransB(const CbsrMatrix &ds, const Matrix &w, Matrix &dx);

/**
 * Simulated latency of the full CBSR-aware linear backward (dW + db +
 * dX) for an N x in -> out layer at sparsity k, mirroring the
 * gemmSimSeconds roofline the dense path is charged with. The flop and
 * traffic terms scale by k/out — the modeled saving of keeping the
 * gradient in CBSR form.
 */
double linearBackwardCbsrSimSeconds(std::uint64_t n, std::uint64_t in_dim,
                                    std::uint64_t out_dim, std::uint32_t k,
                                    const gpusim::DeviceConfig &cfg,
                                    double efficiency = 0.5);

} // namespace maxk

#endif // MAXK_CORE_LINEAR_BACKWARD_CBSR_HH
