#include "core/traffic_model.hh"

#include <cmath>

namespace maxk::traffic
{

Bytes
spmmFeatureBytes(EdgeId nnz, std::uint32_t dim_origin)
{
    return Bytes(4) * dim_origin * nnz;
}

Bytes
spgemmFeatureBytes(EdgeId nnz, std::uint32_t dim_k,
                   std::uint32_t index_bytes)
{
    return Bytes(4 + index_bytes) * dim_k * nnz;
}

std::int64_t
spgemmSavedBytes(EdgeId nnz, std::uint32_t dim_origin, std::uint32_t dim_k,
                 std::uint32_t index_bytes)
{
    return static_cast<std::int64_t>(spmmFeatureBytes(nnz, dim_origin)) -
           static_cast<std::int64_t>(
               spgemmFeatureBytes(nnz, dim_k, index_bytes));
}

Bytes
sspmmReadBytes(NodeId num_nodes, std::uint32_t dim_origin, EdgeId nnz,
               std::uint32_t dim_k, std::uint32_t index_bytes)
{
    return Bytes(4) * num_nodes * dim_origin +
           spgemmFeatureBytes(nnz, dim_k, index_bytes);
}

Bytes
sspmmWriteBytes(EdgeId nnz, std::uint32_t dim_k)
{
    return Bytes(4) * dim_k * nnz;
}

Bytes
outerNaiveReadBytes(EdgeId nnz, std::uint32_t dim_origin)
{
    return Bytes(4) * dim_origin * nnz;
}

Bytes
outerNaiveWriteBytes(EdgeId nnz, std::uint32_t dim_origin)
{
    return Bytes(4) * dim_origin * nnz;
}

std::uint64_t
spgemmAtomicOps(NodeId num_nodes, std::uint32_t dim_origin,
                double avg_degree, std::uint32_t workload_cap)
{
    const double groups_per_node =
        std::ceil(avg_degree / static_cast<double>(workload_cap));
    return static_cast<std::uint64_t>(num_nodes * dim_origin *
                                      groups_per_node);
}

double
spgemmReductionFraction(std::uint32_t dim_origin, std::uint32_t dim_k,
                        std::uint32_t index_bytes)
{
    const double spmm = 4.0 * dim_origin;
    const double spgemm = (4.0 + index_bytes) * dim_k;
    return spmm > 0.0 ? 1.0 - spgemm / spmm : 0.0;
}

} // namespace maxk::traffic
