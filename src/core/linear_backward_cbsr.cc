#include "core/linear_backward_cbsr.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace maxk
{

namespace
{
/** Rows per chunk for the row-parallel loops (matches gnn_layer.cc). */
constexpr std::size_t kRowGrain = 16;
/** Input-dim columns per chunk for the dw-parallel loop: dw rows are
 *  short (out_dim floats), so a finer grain keeps 8 workers busy even
 *  on 64-wide layers. */
constexpr std::size_t kColGrain = 8;
} // namespace

void
cbsrGemmTransA(const Matrix &x, const CbsrMatrix &ds, Matrix &dw)
{
    checkInvariant(x.rows() == ds.rows(),
                   "cbsrGemmTransA: row count mismatch");
    const std::size_t in_dim = x.cols();
    const NodeId n = ds.rows();
    const std::uint32_t dim_k = ds.dimK();
    dw.ensureShape(in_dim, ds.dimOrigin());
    dw.setZero();
    // Parallel over the input dimension: worker t owns dw rows
    // [begin, end), so per (i, col) the contributions fold in ascending
    // adjacency-row order exactly like the serial sweep — and exactly
    // like gemmTransA over the decompressed gradient, whose extra terms
    // are ±0 products that leave an IEEE accumulator unchanged.
    parallelFor(0, in_dim, kColGrain,
                [&](std::uint32_t, std::size_t begin, std::size_t end) {
                    for (NodeId r = 0; r < n; ++r) {
                        const Float *xr = x.row(r);
                        const Float *data = ds.dataRow(r);
                        for (std::size_t i = begin; i < end; ++i) {
                            const Float av = xr[i];
                            if (av == 0.0f)
                                continue;
                            Float *drow = dw.row(i);
                            for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                                drow[ds.indexAt(r, kk)] += av * data[kk];
                        }
                    }
                });
}

void
cbsrColumnSums(const CbsrMatrix &ds, Matrix &out)
{
    out.ensureShape(1, ds.dimOrigin());
    out.setZero();
    Float *o = out.data();
    const std::uint32_t dim_k = ds.dimK();
    for (NodeId r = 0; r < ds.rows(); ++r) {
        const Float *data = ds.dataRow(r);
        for (std::uint32_t kk = 0; kk < dim_k; ++kk)
            o[ds.indexAt(r, kk)] += data[kk];
    }
}

void
cbsrGemmTransB(const CbsrMatrix &ds, const Matrix &w, Matrix &dx)
{
    checkInvariant(ds.dimOrigin() == w.cols(),
                   "cbsrGemmTransB: col count mismatch");
    const std::size_t in_dim = w.rows();
    const std::uint32_t dim_k = ds.dimK();
    dx.ensureShape(ds.rows(), in_dim);
    dx.setZero();
    parallelFor(0, ds.rows(), kRowGrain,
                [&](std::uint32_t, std::size_t begin, std::size_t end) {
                    for (std::size_t r = begin; r < end; ++r) {
                        const NodeId row = static_cast<NodeId>(r);
                        const Float *data = ds.dataRow(row);
                        Float *drow = dx.row(r);
                        for (std::size_t i = 0; i < in_dim; ++i) {
                            const Float *wrow = w.row(i);
                            Float acc = 0.0f;
                            for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                                acc += data[kk] *
                                       wrow[ds.indexAt(row, kk)];
                            // += onto the zeroed output (not a store):
                            // gemmTransB folds acc the same way, which
                            // normalises a -0 accumulator to +0.
                            drow[i] += acc;
                        }
                    }
                });
}

double
linearBackwardCbsrSimSeconds(std::uint64_t n, std::uint64_t in_dim,
                             std::uint64_t out_dim, std::uint32_t k,
                             const gpusim::DeviceConfig &cfg,
                             double efficiency)
{
    // dW and dX each fold 2*N*k*in flops; db adds N*k. The gather through
    // sp_index keeps this on the CUDA cores (fp32 peak), unlike the dense
    // path's TF32 tensor-core GEMMs — the traffic term is where CBSR wins.
    const double flops = 4.0 * static_cast<double>(n) * k * in_dim +
                         static_cast<double>(n) * k;
    const double cbsr_bytes =
        static_cast<double>(n) * k *
        (sizeof(Float) + (out_dim <= 256 ? 1 : 2));
    const double bytes =
        4.0 * (static_cast<double>(n) * in_dim +          // X read (dW)
               static_cast<double>(in_dim) * out_dim +    // W read (dX)
               static_cast<double>(in_dim) * out_dim +    // dW write
               static_cast<double>(n) * in_dim) +         // dX write
        2.0 * cbsr_bytes;                                 // dY read twice
    const double t_compute = flops / cfg.flopsPerSec();
    const double t_memory = bytes / cfg.hbmBytesPerSec();
    return cfg.launchOverheadUs * 1e-6 +
           std::max(t_compute, t_memory) / efficiency;
}

} // namespace maxk
