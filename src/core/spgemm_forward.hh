/**
 * @file
 * Forward row-wise-product SpGEMM kernel (contribution (b), Sec. 4.1,
 * Algorithm 1): X_l = A * CBSR(h(X_{l-1})).
 *
 * Per Edge Group, the warp fetches sp_data/sp_index rows with coalesced
 * global reads, multiplies by the edge value and scatter-accumulates into
 * a shared-memory buffer of dim_origin floats (the sparse accumulation
 * stays on-chip — the key traffic saving). After a barrier, the buffer is
 * atomically merged into the dense output row with coalesced global
 * transactions (the write-back stage whose k-independent cost explains
 * the low-k speedup saturation the paper reports in Sec. 5.2).
 */

#ifndef MAXK_CORE_SPGEMM_FORWARD_HH
#define MAXK_CORE_SPGEMM_FORWARD_HH

#include "core/cbsr.hh"
#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "graph/edge_groups.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/**
 * Y = A * Xs where Xs is CBSR-compressed.
 *
 * @param a    adjacency in CSR with aggregator edge values
 * @param part edge-group partition of a (built once at preprocessing)
 * @param xs   CBSR sparsified features (rows == |V|)
 * @param y    dense output, resized to |V| x dimOrigin
 */
gpusim::KernelStats spgemmForward(const CsrGraph &a,
                                  const EdgeGroupPartition &part,
                                  const CbsrMatrix &xs, Matrix &y,
                                  const SimOptions &opt = {});

} // namespace maxk

#endif // MAXK_CORE_SPGEMM_FORWARD_HH
