/**
 * @file
 * Forward row-wise-product SpGEMM kernel (contribution (b), Sec. 4.1,
 * Algorithm 1): X_l = A * CBSR(h(X_{l-1})).
 *
 * Per Edge Group, the warp fetches sp_data/sp_index rows with coalesced
 * global reads, multiplies by the edge value and scatter-accumulates into
 * a shared-memory buffer of dim_origin floats (the sparse accumulation
 * stays on-chip — the key traffic saving). After a barrier, the buffer is
 * atomically merged into the dense output row with coalesced global
 * transactions (the write-back stage whose k-independent cost explains
 * the low-k speedup saturation the paper reports in Sec. 5.2).
 *
 * spgemmForwardFused folds the MaxK pivot-select + CBSR emit stage into
 * the same launch (ISSUE 4): the select phase runs exactly the
 * maxk_select program, but sp_data is handed to the aggregation stage
 * through shared memory instead of a global store/reload — the N*k
 * 4-byte data segment never round-trips through DRAM. sp_index is still
 * written globally because the backward SSpMM and the MaxK gradient
 * mask reuse the forward pattern (Sec. 3.1). The functional outputs
 * (both y and the emitted CBSR) are bitwise-identical to running
 * maxkCompress followed by spgemmForward; only the cost model differs.
 */

#ifndef MAXK_CORE_SPGEMM_FORWARD_HH
#define MAXK_CORE_SPGEMM_FORWARD_HH

#include "core/cbsr.hh"
#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "graph/edge_groups.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/**
 * Y = A * Xs where Xs is CBSR-compressed.
 *
 * @param a    adjacency in CSR with aggregator edge values
 * @param part edge-group partition of a (built once at preprocessing)
 * @param xs   CBSR sparsified features (rows == |V|)
 * @param y    dense output, resized to |V| x dimOrigin
 */
gpusim::KernelStats spgemmForward(const CsrGraph &a,
                                  const EdgeGroupPartition &part,
                                  const CbsrMatrix &xs, Matrix &y,
                                  const SimOptions &opt = {});

/**
 * Fused MaxK select + CBSR emit + SpGEMM aggregation in one launch:
 * Y = A * CBSR(MaxK_k(x)), with the emitted CBSR returned in xs for the
 * backward pass. Bitwise-identical outputs to the unfused pipeline;
 * strictly lower modeled DRAM traffic (the sp_data round-trip and one
 * launch overhead are saved). Phases: "select+compress",
 * "compute+accumulate", "writeback".
 *
 * @param x  dense pre-activations (N x dimOrigin)
 * @param k  survivors per row (1 <= k <= dimOrigin)
 * @param xs emitted CBSR activation (pattern + data, resized)
 * @param y  dense output, resized to |V| x dimOrigin
 */
gpusim::KernelStats spgemmForwardFused(const CsrGraph &a,
                                       const EdgeGroupPartition &part,
                                       const Matrix &x, std::uint32_t k,
                                       CbsrMatrix &xs, Matrix &y,
                                       const SimOptions &opt = {});

} // namespace maxk

#endif // MAXK_CORE_SPGEMM_FORWARD_HH
