#include "core/transpose_gather.hh"

#include "common/logging.hh"
#include "common/parallel.hh"

namespace maxk
{

namespace
{
/** Rows per chunk; matches the other row-parallel hot loops. */
constexpr std::size_t kRowGrain = 16;
} // namespace

void
gatherTransposedDense(const CsrGraph &a, const Matrix &x, Matrix &out,
                      std::uint32_t threads)
{
    checkInvariant(out.rows() == a.numNodes() && out.cols() == x.cols(),
                   "gatherTransposedDense: output shape mismatch");
    const std::size_t dim = x.cols();
    const CsrGraph &at = a.transposeCached();
    parallelFor(
        0, at.numNodes(), kRowGrain,
        [&](std::uint32_t, std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) {
                const NodeId j = static_cast<NodeId>(r);
                Float *o = out.row(j);
                for (EdgeId e = at.rowPtr()[j]; e < at.rowPtr()[j + 1];
                     ++e) {
                    const Float v = at.values()[e];
                    const Float *xr = x.row(at.colIdx()[e]);
                    for (std::size_t d = 0; d < dim; ++d)
                        o[d] += v * xr[d];
                }
            }
        },
        threads);
}

void
gatherTransposedCbsr(const CsrGraph &a, const Matrix &dxl,
                     CbsrMatrix &dxs, std::uint32_t threads)
{
    checkInvariant(dxs.rows() == a.numNodes(),
                   "gatherTransposedCbsr: row count mismatch");
    const std::uint32_t dim_k = dxs.dimK();
    const CsrGraph &at = a.transposeCached();
    parallelFor(
        0, at.numNodes(), kRowGrain,
        [&](std::uint32_t, std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) {
                const NodeId j = static_cast<NodeId>(r);
                Float *out = dxs.dataRow(j);
                for (EdgeId e = at.rowPtr()[j]; e < at.rowPtr()[j + 1];
                     ++e) {
                    const Float v = at.values()[e];
                    const Float *g = dxl.row(at.colIdx()[e]);
                    for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                        out[kk] += v * g[dxs.indexAt(j, kk)];
                }
            }
        },
        threads);
}

} // namespace maxk
