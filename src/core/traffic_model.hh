/**
 * @file
 * Analytical global-memory traffic model — the closed-form byte counts of
 * Sec. 4.3 that motivate the kernel design. The test suite checks the
 * simulated kernels against these formulas; the ablation bench uses them
 * to quantify the uint8-index and buffer-placement design choices.
 */

#ifndef MAXK_CORE_TRAFFIC_MODEL_HH
#define MAXK_CORE_TRAFFIC_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace maxk
{

/** Sec. 4.3 byte-count formulas. */
namespace traffic
{

/** Row-wise SpMM feature-fetch traffic: 4 * dim_origin * nnz. */
Bytes spmmFeatureBytes(EdgeId nnz, std::uint32_t dim_origin);

/**
 * Forward SpGEMM feature-fetch traffic:
 * (4 + index_bytes) * dim_k * nnz (5 bytes/elem with uint8 indices).
 */
Bytes spgemmFeatureBytes(EdgeId nnz, std::uint32_t dim_k,
                         std::uint32_t index_bytes);

/** Forward traffic saved vs SpMM: (4*dim_origin - 5*dim_k) * nnz. */
std::int64_t spgemmSavedBytes(EdgeId nnz, std::uint32_t dim_origin,
                              std::uint32_t dim_k,
                              std::uint32_t index_bytes);

/**
 * Backward SSpMM read traffic:
 * 4*N*dim_origin (prefetch) + (4 + index_bytes)*dim_k*nnz.
 */
Bytes sspmmReadBytes(NodeId num_nodes, std::uint32_t dim_origin,
                     EdgeId nnz, std::uint32_t dim_k,
                     std::uint32_t index_bytes);

/** Backward SSpMM write traffic: 4 * dim_k * nnz. */
Bytes sspmmWriteBytes(EdgeId nnz, std::uint32_t dim_k);

/** Naive outer-product SpMM read traffic: 4 * dim_origin * nnz. */
Bytes outerNaiveReadBytes(EdgeId nnz, std::uint32_t dim_origin);

/** Naive outer-product SpMM write traffic: 4 * dim_origin * nnz. */
Bytes outerNaiveWriteBytes(EdgeId nnz, std::uint32_t dim_origin);

/**
 * Output accumulation atomics of the forward SpGEMM / row-wise SpMM
 * write-back: N * dim_origin * ceil(avg_degree / w) operations.
 */
std::uint64_t spgemmAtomicOps(NodeId num_nodes, std::uint32_t dim_origin,
                              double avg_degree, std::uint32_t workload_cap);

/** Fractional traffic reduction of forward SpGEMM vs SpMM (0..1). */
double spgemmReductionFraction(std::uint32_t dim_origin,
                               std::uint32_t dim_k,
                               std::uint32_t index_bytes);

} // namespace traffic

} // namespace maxk

#endif // MAXK_CORE_TRAFFIC_MODEL_HH
