#include "core/maxk.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "gpusim/context.hh"

namespace maxk
{

std::uint32_t
pivotSelect(const Float *row, std::uint32_t n, std::uint32_t k,
            std::vector<std::uint32_t> &selected)
{
    selected.clear();
    checkInvariant(k >= 1 && k <= n, "pivotSelect: need 1 <= k <= n");

    if (k == n) {
        for (std::uint32_t i = 0; i < n; ++i)
            selected.push_back(i);
        return 0;
    }

    Float lo = row[0], hi = row[0];
    for (std::uint32_t i = 1; i < n; ++i) {
        lo = std::min(lo, row[i]);
        hi = std::max(hi, row[i]);
    }

    auto count_above = [&](Float pivot) {
        std::uint32_t c = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            c += row[i] > pivot ? 1 : 0;
        return c;
    };

    // Bisection invariant: count(> flo) >= k >= count(> fhi).
    // flo starts just below min (count = n >= k); fhi at max (count = 0).
    Float flo = std::nextafter(lo, -std::numeric_limits<Float>::infinity());
    Float fhi = hi;
    std::uint32_t iterations = 0;
    bool exact = false;
    Float threshold = fhi;
    for (std::uint32_t it = 0; it < 48; ++it) {
        const Float mid = 0.5f * (flo + fhi);
        if (!(mid > flo) || !(mid < fhi))
            break; // float precision exhausted: tie region reached
        ++iterations;
        const std::uint32_t c = count_above(mid);
        if (c == k) {
            threshold = mid;
            exact = true;
            break;
        }
        if (c > k)
            flo = mid;
        else
            fhi = mid;
    }
    if (!exact)
        threshold = fhi;

    // All strictly-above survivors first (<= k of them by the invariant),
    // then fill remaining slots with tie values in (flo, threshold] in
    // ascending column order — deterministic tie breaking.
    std::uint32_t above = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        above += row[i] > threshold ? 1 : 0;
    std::uint32_t need_ties = k - above;

    for (std::uint32_t i = 0; i < n; ++i) {
        if (row[i] > threshold) {
            selected.push_back(i);
        } else if (need_ties > 0 && row[i] > flo) {
            selected.push_back(i);
            --need_ties;
        }
    }
    checkInvariant(selected.size() == k,
                   "pivotSelect: did not select exactly k elements");
    return iterations;
}

MaxKResult
maxkCompress(const Matrix &x, std::uint32_t k, const SimOptions &opt)
{
    checkInvariant(k >= 1 && k <= x.cols(),
                   "maxkCompress: need 1 <= k <= dimOrigin");
    const NodeId n = static_cast<NodeId>(x.rows());
    const std::uint32_t dim = static_cast<std::uint32_t>(x.cols());

    MaxKResult result;
    result.cbsr = CbsrMatrix(n, k, dim);

    gpusim::KernelContext ctx(opt.device, "maxk_select",
                              opt.simulateCaches);
    ctx.beginPhase("select+compress");

    std::vector<std::uint32_t> selected;
    std::uint64_t total_iters = 0;
    std::uint64_t warp = 0;
    for (NodeId r = 0; r < n; ++r, ++warp) {
        const Float *row = x.row(r);
        // Buffer the row in shared memory (coalesced read), then run the
        // pivot search entirely on-chip.
        ctx.globalRead(warp, row, dim * sizeof(Float));
        ctx.sharedOps(dim, dim * sizeof(Float));

        const std::uint32_t iters = pivotSelect(row, dim, k, selected);
        total_iters += iters;
        result.maxPivotIterations =
            std::max(result.maxPivotIterations, iters);
        // Each bisection pass re-scans the buffered row on-chip. These
        // are warp-wide vectorised shared loads (all 32 lanes count in
        // parallel), which retire ~20x faster than the scalar
        // scatter/atomic ops the sharedOps counter is calibrated for.
        ctx.sharedOps(std::uint64_t(iters + 1) * dim / 20, 0);
        ctx.flops(std::uint64_t(iters + 1) * dim);

        Float *data = result.cbsr.dataRow(r);
        for (std::uint32_t kk = 0; kk < k; ++kk) {
            data[kk] = row[selected[kk]];
            result.cbsr.setIndex(r, kk, selected[kk]);
        }
        ctx.globalWrite(warp, data, result.cbsr.dataRowBytes());
        ctx.globalWrite(warp, result.cbsr.indexRowAddr(r),
                        result.cbsr.indexRowBytes());
    }

    result.avgPivotIterations =
        n ? static_cast<double>(total_iters) / n : 0.0;
    result.stats = ctx.finish(opt.efficiency);
    return result;
}

void
maxkDense(const Matrix &x, std::uint32_t k, Matrix &out)
{
    out.resize(x.rows(), x.cols());
    out.setZero();
    std::vector<std::uint32_t> selected;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        pivotSelect(x.row(r), static_cast<std::uint32_t>(x.cols()), k,
                    selected);
        for (std::uint32_t idx : selected)
            out.at(r, idx) = x.at(r, idx);
    }
}

void
maxkBackwardDense(const Matrix &forward_input, std::uint32_t k,
                  const Matrix &grad_out, Matrix &grad_in)
{
    checkInvariant(forward_input.rows() == grad_out.rows() &&
                       forward_input.cols() == grad_out.cols(),
                   "maxkBackwardDense: shape mismatch");
    grad_in.resize(grad_out.rows(), grad_out.cols());
    grad_in.setZero();
    std::vector<std::uint32_t> selected;
    for (std::size_t r = 0; r < forward_input.rows(); ++r) {
        pivotSelect(forward_input.row(r),
                    static_cast<std::uint32_t>(forward_input.cols()), k,
                    selected);
        for (std::uint32_t idx : selected)
            grad_in.at(r, idx) = grad_out.at(r, idx);
    }
}

} // namespace maxk
