#include "core/maxk.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gpusim/context.hh"

namespace maxk
{

namespace
{

/** Rows per chunk for the row-parallel loops: small enough that the
 *  unit-test graphs (128 rows) still fan out across 8 workers. */
constexpr std::size_t kRowGrain = 16;

/**
 * Top-k selection over a row containing non-finite values. Ordering:
 * +inf always wins, finite values rank by magnitude (bisection), -inf
 * ranks below every finite value, and NaN sorts last — it is selected
 * only when k exceeds the count of all non-NaN entries. Ties resolve in
 * ascending column order throughout, like the finite path.
 */
std::uint32_t
pivotSelectNonFinite(const Float *row, std::uint32_t n, std::uint32_t k,
                     bool any_finite, Float lo, Float hi,
                     std::vector<std::uint32_t> &selected)
{
    std::vector<char> keep(n, 0);
    std::uint32_t remaining = k;
    std::uint32_t iterations = 0;

    // 1) +inf, ascending column order.
    for (std::uint32_t i = 0; i < n && remaining > 0; ++i) {
        if (std::isinf(row[i]) && row[i] > 0.0f) {
            keep[i] = 1;
            --remaining;
        }
    }

    // 2) Top-`remaining` finite values — the finite-path bisection with
    //    every count restricted to finite entries.
    std::uint32_t n_fin = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        n_fin += std::isfinite(row[i]) ? 1 : 0;
    if (remaining >= n_fin) {
        for (std::uint32_t i = 0; i < n; ++i)
            if (std::isfinite(row[i]))
                keep[i] = 1;
        remaining -= n_fin;
    } else if (remaining > 0 && any_finite) {
        auto count_above = [&](Float pivot) {
            std::uint32_t c = 0;
            for (std::uint32_t i = 0; i < n; ++i)
                c += (std::isfinite(row[i]) && row[i] > pivot) ? 1 : 0;
            return c;
        };
        Float flo =
            std::nextafter(lo, -std::numeric_limits<Float>::infinity());
        Float fhi = hi;
        bool exact = false;
        Float threshold = fhi;
        for (std::uint32_t it = 0; it < 48; ++it) {
            const Float mid = 0.5f * (flo + fhi);
            if (!(mid > flo) || !(mid < fhi))
                break;
            ++iterations;
            const std::uint32_t c = count_above(mid);
            if (c == remaining) {
                threshold = mid;
                exact = true;
                break;
            }
            if (c > remaining)
                flo = mid;
            else
                fhi = mid;
        }
        if (!exact)
            threshold = fhi;

        std::uint32_t above = count_above(threshold);
        std::uint32_t need_ties = remaining - above;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!std::isfinite(row[i]))
                continue;
            if (row[i] > threshold) {
                keep[i] = 1;
            } else if (need_ties > 0 && row[i] > flo) {
                keep[i] = 1;
                --need_ties;
            }
        }
        remaining = 0;
    }

    // 3) -inf, then 4) NaN, each in ascending column order.
    for (std::uint32_t i = 0; i < n && remaining > 0; ++i) {
        if (std::isinf(row[i]) && row[i] < 0.0f && !keep[i]) {
            keep[i] = 1;
            --remaining;
        }
    }
    for (std::uint32_t i = 0; i < n && remaining > 0; ++i) {
        if (std::isnan(row[i])) {
            keep[i] = 1;
            --remaining;
        }
    }

    for (std::uint32_t i = 0; i < n; ++i)
        if (keep[i])
            selected.push_back(i);
    return iterations;
}

} // namespace

std::uint32_t
pivotSelect(const Float *row, std::uint32_t n, std::uint32_t k,
            std::vector<std::uint32_t> &selected)
{
    selected.clear();
    checkInvariant(k >= 1 && k <= n, "pivotSelect: need 1 <= k <= n");

    if (k == n) {
        for (std::uint32_t i = 0; i < n; ++i)
            selected.push_back(i);
        return 0;
    }

    // One classification sweep replaces the plain min/max scan: lo/hi
    // cover only finite entries, and the non-finite counts route rows
    // containing NaN/±inf (which break the bisection invariant) to the
    // explicit-ordering fallback.
    std::uint32_t n_nonfinite = 0;
    bool any_finite = false;
    Float lo = 0.0f, hi = 0.0f;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Float v = row[i];
        if (std::isfinite(v)) {
            if (!any_finite) {
                lo = hi = v;
                any_finite = true;
            } else {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        } else {
            ++n_nonfinite;
        }
    }
    if (n_nonfinite > 0) {
        const std::uint32_t iters = pivotSelectNonFinite(
            row, n, k, any_finite, lo, hi, selected);
        checkInvariant(selected.size() == k,
                       "pivotSelect: did not select exactly k elements");
        return iters;
    }

    auto count_above = [&](Float pivot) {
        std::uint32_t c = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            c += row[i] > pivot ? 1 : 0;
        return c;
    };

    // Bisection invariant: count(> flo) >= k >= count(> fhi).
    // flo starts just below min (count = n >= k); fhi at max (count = 0).
    Float flo = std::nextafter(lo, -std::numeric_limits<Float>::infinity());
    Float fhi = hi;
    std::uint32_t iterations = 0;
    bool exact = false;
    Float threshold = fhi;
    for (std::uint32_t it = 0; it < 48; ++it) {
        const Float mid = 0.5f * (flo + fhi);
        if (!(mid > flo) || !(mid < fhi))
            break; // float precision exhausted: tie region reached
        ++iterations;
        const std::uint32_t c = count_above(mid);
        if (c == k) {
            threshold = mid;
            exact = true;
            break;
        }
        if (c > k)
            flo = mid;
        else
            fhi = mid;
    }
    if (!exact)
        threshold = fhi;

    // All strictly-above survivors first (<= k of them by the invariant),
    // then fill remaining slots with tie values in (flo, threshold] in
    // ascending column order — deterministic tie breaking.
    std::uint32_t above = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        above += row[i] > threshold ? 1 : 0;
    std::uint32_t need_ties = k - above;

    for (std::uint32_t i = 0; i < n; ++i) {
        if (row[i] > threshold) {
            selected.push_back(i);
        } else if (need_ties > 0 && row[i] > flo) {
            selected.push_back(i);
            --need_ties;
        }
    }
    checkInvariant(selected.size() == k,
                   "pivotSelect: did not select exactly k elements");
    return iterations;
}

MaxKResult
maxkCompress(const Matrix &x, std::uint32_t k, const SimOptions &opt)
{
    MaxKResult result;
    maxkCompress(x, k, opt, result);
    return result;
}

void
maxkCompress(const Matrix &x, std::uint32_t k, const SimOptions &opt,
             MaxKResult &result)
{
    checkInvariant(k >= 1 && k <= x.cols(),
                   "maxkCompress: need 1 <= k <= dimOrigin");
    const NodeId n = static_cast<NodeId>(x.rows());
    const std::uint32_t dim = static_cast<std::uint32_t>(x.cols());

    result.cbsr.ensureShape(n, k, dim);
    result.maxPivotIterations = 0;
    result.avgPivotIterations = 0.0;

    gpusim::KernelContext ctx(opt.device, "maxk_select",
                              opt.simulateCaches);
    ctx.beginPhase("select+compress");

    const auto chunks =
        splitRange(0, n, kRowGrain, resolveThreads(opt.threads));
    std::vector<std::uint64_t> chunk_iters(chunks.size(), 0);
    std::vector<std::uint32_t> chunk_max(chunks.size(), 0);

    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t tid,
                                        IndexRange rows) {
        std::vector<std::uint32_t> selected;
        std::uint64_t total_iters = 0;
        std::uint32_t max_iters = 0;
        for (std::size_t r = rows.begin; r < rows.end; ++r) {
            const std::uint64_t warp = r; // one warp per row, id == row
            const Float *row = x.row(r);
            // Buffer the row in shared memory (coalesced read), then run
            // the pivot search entirely on-chip.
            dev.globalRead(warp, row, dim * sizeof(Float));
            dev.sharedOps(dim, dim * sizeof(Float));

            const std::uint32_t iters = pivotSelect(row, dim, k, selected);
            total_iters += iters;
            max_iters = std::max(max_iters, iters);
            // Each bisection pass re-scans the buffered row on-chip.
            // These are warp-wide vectorised shared loads (all 32 lanes
            // count in parallel), which retire ~20x faster than the
            // scalar scatter/atomic ops the sharedOps counter is
            // calibrated for.
            dev.sharedOps(std::uint64_t(iters + 1) * dim / 20, 0);
            dev.flops(std::uint64_t(iters + 1) * dim);

            Float *data = result.cbsr.dataRow(static_cast<NodeId>(r));
            for (std::uint32_t kk = 0; kk < k; ++kk) {
                data[kk] = row[selected[kk]];
                result.cbsr.setIndex(static_cast<NodeId>(r), kk,
                                     selected[kk]);
            }
            dev.globalWrite(warp, data, result.cbsr.dataRowBytes());
            dev.globalWrite(warp,
                            result.cbsr.indexRowAddr(
                                static_cast<NodeId>(r)),
                            result.cbsr.indexRowBytes());
        }
        chunk_iters[tid] = total_iters;
        chunk_max[tid] = max_iters;
    });

    std::uint64_t total_iters = 0;
    for (std::size_t t = 0; t < chunks.size(); ++t) {
        total_iters += chunk_iters[t];
        result.maxPivotIterations =
            std::max(result.maxPivotIterations, chunk_max[t]);
    }
    result.avgPivotIterations =
        n ? static_cast<double>(total_iters) / n : 0.0;
    result.stats = ctx.finish(opt.efficiency);
}

void
maxkDense(const Matrix &x, std::uint32_t k, Matrix &out)
{
    out.ensureShape(x.rows(), x.cols());
    out.setZero();
    parallelFor(0, x.rows(), kRowGrain,
                [&](std::uint32_t, std::size_t begin, std::size_t end) {
                    std::vector<std::uint32_t> selected;
                    for (std::size_t r = begin; r < end; ++r) {
                        pivotSelect(x.row(r),
                                    static_cast<std::uint32_t>(x.cols()),
                                    k, selected);
                        for (std::uint32_t idx : selected)
                            out.at(r, idx) = x.at(r, idx);
                    }
                });
}

void
maxkBackwardDense(const Matrix &forward_input, std::uint32_t k,
                  const Matrix &grad_out, Matrix &grad_in)
{
    checkInvariant(forward_input.rows() == grad_out.rows() &&
                       forward_input.cols() == grad_out.cols(),
                   "maxkBackwardDense: shape mismatch");
    grad_in.ensureShape(grad_out.rows(), grad_out.cols());
    grad_in.setZero();
    parallelFor(
        0, forward_input.rows(), kRowGrain,
        [&](std::uint32_t, std::size_t begin, std::size_t end) {
            std::vector<std::uint32_t> selected;
            for (std::size_t r = begin; r < end; ++r) {
                pivotSelect(forward_input.row(r),
                            static_cast<std::uint32_t>(
                                forward_input.cols()),
                            k, selected);
                for (std::uint32_t idx : selected)
                    grad_in.at(r, idx) = grad_out.at(r, idx);
            }
        });
}

} // namespace maxk
