/**
 * @file
 * Backward outer-product SSpMM kernel (contribution (c), Sec. 4.2,
 * Algorithm 2): dXs = SSpMM(A^T, dX_l) sampled at the forward sp_index
 * pattern.
 *
 * The computation is (sparse x dense = sparse) with a KNOWN output
 * pattern: the backward gradient only needs sp_data values at the
 * positions the forward MaxK selected. Because CSR(A) doubles as
 * CSC(A^T), no transpose is materialised. Each warp prefetches the dense
 * gradient row dX_l[i, :] into shared memory once (coalesced), then
 * gathers it irregularly through sp_index on-chip and atomically
 * accumulates coalesced dim_k-wide results into sp_data in global memory.
 */

#ifndef MAXK_CORE_SSPMM_BACKWARD_HH
#define MAXK_CORE_SSPMM_BACKWARD_HH

#include "core/cbsr.hh"
#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "graph/edge_groups.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/**
 * dxs.data[j, kk] = sum_i A[i, j] * dxl[i, sp_index[j, kk]].
 *
 * @param a      adjacency in CSR (reused as CSC of A^T)
 * @param part   edge-group partition of a (same one as the forward pass)
 * @param dxl    dense output-feature gradient (|V| x dimOrigin)
 * @param dxs    output: must already carry the forward sp_index pattern
 *               (use CbsrMatrix::adoptPattern); data is overwritten
 */
gpusim::KernelStats sspmmBackward(const CsrGraph &a,
                                  const EdgeGroupPartition &part,
                                  const Matrix &dxl, CbsrMatrix &dxs,
                                  const SimOptions &opt = {});

} // namespace maxk

#endif // MAXK_CORE_SSPMM_BACKWARD_HH
