/**
 * @file
 * The MaxK nonlinearity (contribution (a), Sec. 3.1) and its pivot-based
 * selection kernel (Sec. 5.3).
 *
 * Forward: keep the k largest values of each node's embedding row, zero
 * the rest, and emit the survivors directly in CBSR form. Backward: the
 * gradient reuses the forward sparsity pattern (only surviving positions
 * receive gradient).
 *
 * The selection kernel mirrors the artifact's implementation: buffer the
 * row in shared memory, compute min/max, then bisect a pivot
 * ((min+max)/2, re-counting elements greater than the pivot) until the
 * count equals k — typically < 10 iterations on normally-distributed
 * activations. Exact ties are resolved deterministically in ascending
 * column order.
 */

#ifndef MAXK_CORE_MAXK_HH
#define MAXK_CORE_MAXK_HH

#include <cstdint>

#include "core/cbsr.hh"
#include "gpusim/kernel_stats.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Output of the fused MaxK-select + CBSR-compress kernel. */
struct MaxKResult
{
    CbsrMatrix cbsr;                  //!< compressed survivors
    gpusim::KernelStats stats;        //!< simulated launch profile
    std::uint32_t maxPivotIterations = 0;  //!< worst row
    double avgPivotIterations = 0.0;       //!< mean over rows
};

/**
 * Apply MaxK to every row of x and compress to CBSR.
 *
 * @param x   dense activations (N x dimOrigin)
 * @param k   survivors per row (1 <= k <= dimOrigin)
 */
MaxKResult maxkCompress(const Matrix &x, std::uint32_t k,
                        const SimOptions &opt = {});

/**
 * In-place variant: compress into an existing result, reusing its CBSR
 * storage when the shape matches. Because the simulator treats host
 * pointers as device addresses, repeated launches into the same result
 * also produce identical simulated stats — useful for epoch loops and
 * the determinism tests.
 */
void maxkCompress(const Matrix &x, std::uint32_t k, const SimOptions &opt,
                  MaxKResult &result);

/**
 * Dense reference: out = MaxK(x) with zeros in non-surviving positions.
 * Used for validation and by the CPU training fallback path.
 */
void maxkDense(const Matrix &x, std::uint32_t k, Matrix &out);

/**
 * Backward masking reference: grad_in = grad_out on surviving positions
 * of the forward input, zero elsewhere. `forward_input` is the dense
 * pre-activation the forward pass saw.
 */
void maxkBackwardDense(const Matrix &forward_input, std::uint32_t k,
                       const Matrix &grad_out, Matrix &grad_in);

/**
 * Pivot-select the top-k threshold of row[0..n): returns the set of
 * surviving positions in `selected` (ascending order, exactly k entries)
 * and the number of bisection iterations used. Exposed for unit tests.
 */
std::uint32_t pivotSelect(const Float *row, std::uint32_t n,
                          std::uint32_t k,
                          std::vector<std::uint32_t> &selected);

} // namespace maxk

#endif // MAXK_CORE_MAXK_HH
