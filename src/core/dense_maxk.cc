#include "core/dense_maxk.hh"

#include "common/logging.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
cbsrGemm(const CbsrMatrix &h, const Matrix &w, Matrix &y,
         const SimOptions &opt)
{
    checkInvariant(w.rows() == h.dimOrigin(),
                   "cbsrGemm: weight row count != dimOrigin");
    const std::uint32_t dim_k = h.dimK();
    const std::size_t out = w.cols();
    y.resize(h.rows(), out);
    y.setZero();

    gpusim::KernelContext ctx(opt.device, "cbsr_gemm",
                              opt.simulateCaches);
    ctx.beginPhase("compute");

    for (NodeId i = 0; i < h.rows(); ++i) {
        const std::uint64_t warp = i;
        ctx.globalRead(warp, h.dataRow(i), h.dataRowBytes());
        ctx.globalRead(warp, h.indexRowAddr(i), h.indexRowBytes());
        const Float *data = h.dataRow(i);
        Float *yr = y.row(i);
        for (std::uint32_t kk = 0; kk < dim_k; ++kk) {
            const Float *wr = w.row(h.indexAt(i, kk));
            // Only k of the d_ff weight rows are touched per sample.
            ctx.globalRead(warp, wr, out * sizeof(Float));
            ctx.flops(2ull * out);
            const Float v = data[kk];
            for (std::size_t c = 0; c < out; ++c)
                yr[c] += v * wr[c];
        }
        ctx.globalWrite(warp, yr, out * sizeof(Float));
    }
    return ctx.finish(opt.efficiency);
}

gpusim::KernelStats
cbsrGemmBackwardData(const CbsrMatrix &h, const Matrix &w,
                     const Matrix &dy, CbsrMatrix &dh,
                     const SimOptions &opt)
{
    checkInvariant(dy.rows() == h.rows(),
                   "cbsrGemmBackwardData: sample count mismatch");
    checkInvariant(dh.rows() == h.rows() && dh.dimK() == h.dimK(),
                   "cbsrGemmBackwardData: pattern not adopted");
    const std::uint32_t dim_k = h.dimK();
    const std::size_t out = w.cols();
    dh.zeroData();

    gpusim::KernelContext ctx(opt.device, "cbsr_gemm_bwd_data",
                              opt.simulateCaches);
    ctx.beginPhase("compute");

    for (NodeId i = 0; i < h.rows(); ++i) {
        const std::uint64_t warp = i;
        ctx.globalRead(warp, dy.row(i), out * sizeof(Float));
        ctx.globalRead(warp, h.indexRowAddr(i), h.indexRowBytes());
        const Float *gy = dy.row(i);
        Float *gd = dh.dataRow(i);
        for (std::uint32_t kk = 0; kk < dim_k; ++kk) {
            const Float *wr = w.row(h.indexAt(i, kk));
            ctx.globalRead(warp, wr, out * sizeof(Float));
            ctx.flops(2ull * out);
            double acc = 0.0;
            for (std::size_t c = 0; c < out; ++c)
                acc += static_cast<double>(gy[c]) * wr[c];
            gd[kk] = static_cast<Float>(acc);
        }
        ctx.globalWrite(warp, gd, dh.dataRowBytes());
    }
    return ctx.finish(opt.efficiency);
}

gpusim::KernelStats
cbsrGemmBackwardWeight(const CbsrMatrix &h, const Matrix &dy, Matrix &dw,
                       const SimOptions &opt)
{
    checkInvariant(dy.rows() == h.rows(),
                   "cbsrGemmBackwardWeight: sample count mismatch");
    const std::uint32_t dim_k = h.dimK();
    const std::size_t out = dy.cols();
    if (dw.rows() != h.dimOrigin() || dw.cols() != out)
        dw.resize(h.dimOrigin(), out);

    gpusim::KernelContext ctx(opt.device, "cbsr_gemm_bwd_weight",
                              opt.simulateCaches);
    ctx.beginPhase("compute+accumulate");

    for (NodeId i = 0; i < h.rows(); ++i) {
        const std::uint64_t warp = i;
        ctx.globalRead(warp, h.dataRow(i), h.dataRowBytes());
        ctx.globalRead(warp, h.indexRowAddr(i), h.indexRowBytes());
        ctx.globalRead(warp, dy.row(i), out * sizeof(Float));
        const Float *data = h.dataRow(i);
        const Float *gy = dy.row(i);
        for (std::uint32_t kk = 0; kk < dim_k; ++kk) {
            Float *wr = dw.row(h.indexAt(i, kk));
            const Float v = data[kk];
            ctx.flops(2ull * out);
            for (std::size_t c = 0; c < out; ++c)
                wr[c] += v * gy[c];
            // Different samples may touch the same weight row:
            // atomic accumulation with contention issue cost.
            ctx.sharedOps(out, 0);
            ctx.globalAtomicAccum(warp, wr, out * sizeof(Float));
        }
    }
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
