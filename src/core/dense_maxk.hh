/**
 * @file
 * MaxK beyond GNNs — the paper's future-work direction (Sec. 6): "The
 * proposed MaxK nonlinearity could be potentially expanded to more DNN
 * architectures such as CNNs and Transformers, to provide regularly
 * sparsified feature map for acceleration."
 *
 * The natural target is the two-GEMM feed-forward block
 * (Transformer FFN / MLP head):  Y = act(X W1) W2.
 * With act = MaxK, the intermediate activation is exactly-k sparse per
 * row, so the second GEMM becomes a CBSR x dense product that touches
 * only k of the d_ff rows of W2 per sample — cutting both FLOPs and
 * weight traffic by k/d_ff.
 */

#ifndef MAXK_CORE_DENSE_MAXK_HH
#define MAXK_CORE_DENSE_MAXK_HH

#include "core/cbsr.hh"
#include "gpusim/kernel_stats.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/**
 * Y = CBSR(h) * W, the sparse-activation GEMM of a MaxK FFN.
 *
 * Row-wise product: Y[i, :] = sum_kk h.data[i, kk] * W[h.index(i,kk), :].
 * Each warp owns a row, accumulates in registers/shared memory, and
 * reads exactly k rows of W per sample (coalesced).
 *
 * @param h   CBSR activations (N x k over dimOrigin = rows of W)
 * @param w   dense weight (dimOrigin x out)
 * @param y   output (N x out), resized
 */
gpusim::KernelStats cbsrGemm(const CbsrMatrix &h, const Matrix &w,
                             Matrix &y, const SimOptions &opt = {});

/**
 * Backward of the sparse-activation GEMM w.r.t. the CBSR data segment:
 * dh.data[i, kk] = dot(dy[i, :], W[h.index(i,kk), :]). The sparsity
 * pattern is inherited from the forward (dh must adoptPattern first),
 * exactly like the GNN SSpMM inherits sp_index.
 */
gpusim::KernelStats cbsrGemmBackwardData(const CbsrMatrix &h,
                                         const Matrix &w,
                                         const Matrix &dy,
                                         CbsrMatrix &dh,
                                         const SimOptions &opt = {});

/**
 * Backward w.r.t. the weight: dW[r, :] += sum over samples with
 * r in their pattern of h.data * dy[i, :]. Scatter-accumulated the way
 * the real kernel would (atomic per touched weight row).
 */
gpusim::KernelStats cbsrGemmBackwardWeight(const CbsrMatrix &h,
                                           const Matrix &dy, Matrix &dw,
                                           const SimOptions &opt = {});

} // namespace maxk

#endif // MAXK_CORE_DENSE_MAXK_HH
