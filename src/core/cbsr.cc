#include "core/cbsr.hh"

#include "common/logging.hh"
#include "tensor/alloc_probe.hh"

namespace maxk
{

namespace
{
constexpr allocprobe::Kind kKind = allocprobe::Kind::Cbsr;
} // namespace

CbsrMatrix::CbsrMatrix(NodeId rows, std::uint32_t dim_k,
                       std::uint32_t dim_origin)
    : rows_(rows),
      dimK_(dim_k),
      dimOrigin_(dim_origin),
      narrowIndex_(dim_origin <= 256)
{
    checkInvariant(dim_k >= 1 && dim_k <= dim_origin,
                   "CBSR: need 1 <= dimK <= dimOrigin");
    checkInvariant(dim_origin <= 65536, "CBSR: dimOrigin exceeds uint16");
    allocprobe::tracked(spData_, kKind, [&] {
        spData_.assign(std::size_t(rows) * dim_k, 0.0f);
    });
    if (narrowIndex_)
        allocprobe::tracked(spIndex8_, kKind, [&] {
            spIndex8_.assign(std::size_t(rows) * dim_k, 0);
        });
    else
        allocprobe::tracked(spIndex16_, kKind, [&] {
            spIndex16_.assign(std::size_t(rows) * dim_k, 0);
        });
}

CbsrMatrix::CbsrMatrix(const CbsrMatrix &other)
    : rows_(other.rows_),
      dimK_(other.dimK_),
      dimOrigin_(other.dimOrigin_),
      narrowIndex_(other.narrowIndex_),
      spData_(other.spData_),
      spIndex8_(other.spIndex8_),
      spIndex16_(other.spIndex16_)
{
    allocprobe::acquired(spData_, kKind);
    allocprobe::acquired(spIndex8_, kKind);
    allocprobe::acquired(spIndex16_, kKind);
}

CbsrMatrix &
CbsrMatrix::operator=(const CbsrMatrix &other)
{
    if (this != &other) {
        rows_ = other.rows_;
        dimK_ = other.dimK_;
        dimOrigin_ = other.dimOrigin_;
        narrowIndex_ = other.narrowIndex_;
        allocprobe::tracked(spData_, kKind,
                            [&] { spData_ = other.spData_; });
        allocprobe::tracked(spIndex8_, kKind,
                            [&] { spIndex8_ = other.spIndex8_; });
        allocprobe::tracked(spIndex16_, kKind,
                            [&] { spIndex16_ = other.spIndex16_; });
    }
    return *this;
}

CbsrMatrix &
CbsrMatrix::operator=(CbsrMatrix &&other) noexcept
{
    if (this != &other) {
        allocprobe::released(spData_);
        allocprobe::released(spIndex8_);
        allocprobe::released(spIndex16_);
        spData_ = std::move(other.spData_);
        spIndex8_ = std::move(other.spIndex8_);
        spIndex16_ = std::move(other.spIndex16_);
        rows_ = other.rows_;
        dimK_ = other.dimK_;
        dimOrigin_ = other.dimOrigin_;
        narrowIndex_ = other.narrowIndex_;
        other.rows_ = 0;
        other.dimK_ = 0;
        other.dimOrigin_ = 0;
    }
    return *this;
}

CbsrMatrix::~CbsrMatrix()
{
    allocprobe::released(spData_);
    allocprobe::released(spIndex8_);
    allocprobe::released(spIndex16_);
}

Bytes
CbsrMatrix::storageBytes() const
{
    return spData_.size() * sizeof(Float) +
           std::size_t(rows_) * dimK_ * indexBytes();
}

void
CbsrMatrix::decompress(Matrix &dense) const
{
    dense.resize(rows_, dimOrigin_);
    for (NodeId r = 0; r < rows_; ++r) {
        const Float *data = dataRow(r);
        Float *out = dense.row(r);
        for (std::uint32_t kk = 0; kk < dimK_; ++kk)
            out[indexAt(r, kk)] = data[kk];
    }
}

void
CbsrMatrix::zeroData()
{
    std::fill(spData_.begin(), spData_.end(), 0.0f);
}

void
CbsrMatrix::reshape(NodeId rows, std::uint32_t dim_k,
                    std::uint32_t dim_origin)
{
    checkInvariant(dim_k >= 1 && dim_k <= dim_origin,
                   "CBSR: need 1 <= dimK <= dimOrigin");
    checkInvariant(dim_origin <= 65536, "CBSR: dimOrigin exceeds uint16");
    rows_ = rows;
    dimK_ = dim_k;
    dimOrigin_ = dim_origin;
    narrowIndex_ = dim_origin <= 256;
    allocprobe::tracked(spData_, kKind, [&] {
        spData_.assign(std::size_t(rows) * dim_k, 0.0f);
    });
    if (narrowIndex_) {
        allocprobe::tracked(spIndex8_, kKind, [&] {
            spIndex8_.assign(std::size_t(rows) * dim_k, 0);
        });
        spIndex16_.clear();
    } else {
        allocprobe::tracked(spIndex16_, kKind, [&] {
            spIndex16_.assign(std::size_t(rows) * dim_k, 0);
        });
        spIndex8_.clear();
    }
}

void
CbsrMatrix::ensureShape(NodeId rows, std::uint32_t dim_k,
                        std::uint32_t dim_origin)
{
    checkInvariant(dim_k >= 1 && dim_k <= dim_origin,
                   "CBSR: need 1 <= dimK <= dimOrigin");
    checkInvariant(dim_origin <= 65536, "CBSR: dimOrigin exceeds uint16");
    rows_ = rows;
    dimK_ = dim_k;
    dimOrigin_ = dim_origin;
    narrowIndex_ = dim_origin <= 256;
    const std::size_t n = std::size_t(rows) * dim_k;
    if (spData_.size() != n)
        allocprobe::tracked(spData_, kKind, [&] { spData_.resize(n); });
    if (narrowIndex_) {
        if (spIndex8_.size() != n)
            allocprobe::tracked(spIndex8_, kKind,
                                [&] { spIndex8_.resize(n); });
        spIndex16_.clear();
    } else {
        if (spIndex16_.size() != n)
            allocprobe::tracked(spIndex16_, kKind,
                                [&] { spIndex16_.resize(n); });
        spIndex8_.clear();
    }
}

bool
CbsrMatrix::validate() const
{
    for (NodeId r = 0; r < rows_; ++r) {
        for (std::uint32_t kk = 0; kk < dimK_; ++kk) {
            const std::uint32_t col = indexAt(r, kk);
            if (col >= dimOrigin_)
                return false;
            if (kk > 0 && indexAt(r, kk - 1) >= col)
                return false;
        }
    }
    return true;
}

void
CbsrMatrix::adoptPattern(const CbsrMatrix &other)
{
    rows_ = other.rows_;
    dimK_ = other.dimK_;
    dimOrigin_ = other.dimOrigin_;
    narrowIndex_ = other.narrowIndex_;
    allocprobe::tracked(spIndex8_, kKind,
                        [&] { spIndex8_ = other.spIndex8_; });
    allocprobe::tracked(spIndex16_, kKind,
                        [&] { spIndex16_ = other.spIndex16_; });
    allocprobe::tracked(spData_, kKind, [&] {
        spData_.assign(std::size_t(rows_) * dimK_, 0.0f);
    });
}

} // namespace maxk
