#include "core/cbsr.hh"

#include "common/logging.hh"

namespace maxk
{

CbsrMatrix::CbsrMatrix(NodeId rows, std::uint32_t dim_k,
                       std::uint32_t dim_origin)
    : rows_(rows),
      dimK_(dim_k),
      dimOrigin_(dim_origin),
      narrowIndex_(dim_origin <= 256)
{
    checkInvariant(dim_k >= 1 && dim_k <= dim_origin,
                   "CBSR: need 1 <= dimK <= dimOrigin");
    checkInvariant(dim_origin <= 65536, "CBSR: dimOrigin exceeds uint16");
    spData_.assign(std::size_t(rows) * dim_k, 0.0f);
    if (narrowIndex_)
        spIndex8_.assign(std::size_t(rows) * dim_k, 0);
    else
        spIndex16_.assign(std::size_t(rows) * dim_k, 0);
}

Bytes
CbsrMatrix::storageBytes() const
{
    return spData_.size() * sizeof(Float) +
           std::size_t(rows_) * dimK_ * indexBytes();
}

void
CbsrMatrix::decompress(Matrix &dense) const
{
    dense.resize(rows_, dimOrigin_);
    for (NodeId r = 0; r < rows_; ++r) {
        const Float *data = dataRow(r);
        Float *out = dense.row(r);
        for (std::uint32_t kk = 0; kk < dimK_; ++kk)
            out[indexAt(r, kk)] = data[kk];
    }
}

void
CbsrMatrix::zeroData()
{
    std::fill(spData_.begin(), spData_.end(), 0.0f);
}

void
CbsrMatrix::reshape(NodeId rows, std::uint32_t dim_k,
                    std::uint32_t dim_origin)
{
    checkInvariant(dim_k >= 1 && dim_k <= dim_origin,
                   "CBSR: need 1 <= dimK <= dimOrigin");
    checkInvariant(dim_origin <= 65536, "CBSR: dimOrigin exceeds uint16");
    rows_ = rows;
    dimK_ = dim_k;
    dimOrigin_ = dim_origin;
    narrowIndex_ = dim_origin <= 256;
    spData_.assign(std::size_t(rows) * dim_k, 0.0f);
    if (narrowIndex_) {
        spIndex8_.assign(std::size_t(rows) * dim_k, 0);
        spIndex16_.clear();
    } else {
        spIndex16_.assign(std::size_t(rows) * dim_k, 0);
        spIndex8_.clear();
    }
}

bool
CbsrMatrix::validate() const
{
    for (NodeId r = 0; r < rows_; ++r) {
        for (std::uint32_t kk = 0; kk < dimK_; ++kk) {
            const std::uint32_t col = indexAt(r, kk);
            if (col >= dimOrigin_)
                return false;
            if (kk > 0 && indexAt(r, kk - 1) >= col)
                return false;
        }
    }
    return true;
}

void
CbsrMatrix::adoptPattern(const CbsrMatrix &other)
{
    rows_ = other.rows_;
    dimK_ = other.dimK_;
    dimOrigin_ = other.dimOrigin_;
    narrowIndex_ = other.narrowIndex_;
    spIndex8_ = other.spIndex8_;
    spIndex16_ = other.spIndex16_;
    spData_.assign(std::size_t(rows_) * dimK_, 0.0f);
}

} // namespace maxk
