#include "core/sspmm_backward.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/transpose_gather.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
sspmmBackward(const CsrGraph &a, const EdgeGroupPartition &part,
              const Matrix &dxl, CbsrMatrix &dxs, const SimOptions &opt)
{
    checkInvariant(dxl.rows() == a.numNodes(),
                   "sspmmBackward: dXl row count != |V|");
    checkInvariant(dxs.rows() == a.numNodes(),
                   "sspmmBackward: dXs row count != |V|");
    checkInvariant(dxs.dimOrigin() == dxl.cols(),
                   "sspmmBackward: dimOrigin mismatch");
    checkInvariant(part.covers(a),
                   "sspmmBackward: partition does not cover A");

    const std::uint32_t dim_k = dxs.dimK();
    const std::uint32_t dim_origin = dxs.dimOrigin();
    dxs.zeroData();

    gpusim::KernelContext ctx(opt.device, "sspmm_backward",
                              opt.simulateCaches);
    const std::uint32_t egs_per_warp =
        EdgeGroupPartition::egsPerWarp(dim_k);

    // In-degrees decide output atomic contention: sp_data[j] receives
    // one RMW per in-edge of j; only rows with >1 writer serialize.
    std::vector<EdgeId> in_deg(a.numNodes(), 0);
    for (NodeId c : a.colIdx())
        ++in_deg[c];

    // Scatter-shaped kernel: EGs of source row i write dxs rows of
    // arbitrary destinations j. The traffic walk (purely structural)
    // shards over row-aligned EG chunks — alignment keeps the per-row
    // dense-gradient prefetch inside one chunk, so the recorded
    // prefetch sequence matches the serial sweep. The numeric side,
    // when parallel, runs as a gather over the stable transpose so each
    // sp_data element folds its contributions in the exact serial edge
    // order — bitwise-identical for any thread count. The single-chunk
    // path keeps the original fused loop.
    const auto chunks = rowAlignedChunks(part.groups(), 32,
                                         resolveThreads(opt.threads));

    auto walk = [&](auto &dev, IndexRange egs, bool numeric) {
        // All EGs of one adjacency row share a thread block, so the
        // dense gradient row is prefetched into shared memory once per
        // row — the 4*N*dimOrigin read term of Sec. 4.3. EGs are
        // emitted row-contiguous by the partitioner, so tracking the
        // last row suffices.
        std::vector<Float> buf(dim_origin);
        bool have_row = false;
        NodeId buffered_row = 0;
        std::vector<const void *> gather_addrs(dim_k);
        for (std::size_t gi = egs.begin; gi < egs.end; ++gi) {
            const EdgeGroup &eg = part.groups()[gi];
            const std::uint64_t warp = gi / egs_per_warp;
            const Float *dense_row = dxl.row(eg.row);

            if (opt.sspmmPrefetch &&
                (!have_row || buffered_row != eg.row)) {
                dev.usePhase("prefetch");
                dev.globalRead(warp, dense_row,
                               dim_origin * sizeof(Float));
                dev.sharedOps(dim_origin, dim_origin * sizeof(Float));
                if (numeric)
                    std::copy(dense_row, dense_row + dim_origin,
                              buf.begin());
                have_row = true;
                buffered_row = eg.row;
            }

            dev.usePhase("compute+accumulate");
            dev.globalReadStreaming(warp, &a.values()[eg.begin],
                                    (eg.end - eg.begin) * sizeof(Float));
            dev.globalReadStreaming(warp, &a.colIdx()[eg.begin],
                                    (eg.end - eg.begin) * sizeof(NodeId));

            for (EdgeId e = eg.begin; e < eg.end; ++e) {
                const NodeId j = a.colIdx()[e];
                const Float v = a.values()[e];
                // sp_index fetch: coalesced global read.
                dev.globalRead(warp, dxs.indexRowAddr(j),
                               dxs.indexRowBytes());
                dev.flops(2ull * dim_k);
                Float *out = dxs.dataRow(j);
                if (opt.sspmmPrefetch) {
                    // Irregular gather happens inside shared memory
                    // (Algorithm 2 line 9) — the point of the prefetch.
                    dev.sharedOps(dim_k, dim_k * sizeof(Float));
                    if (numeric) {
                        for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                            out[kk] += v * buf[dxs.indexAt(j, kk)];
                    }
                } else {
                    // Ablation: gather the dense gradient row straight
                    // from global memory through sp_index — uncoalesced.
                    for (std::uint32_t kk = 0; kk < dim_k; ++kk) {
                        const std::uint32_t col = dxs.indexAt(j, kk);
                        gather_addrs[kk] = dense_row + col;
                        if (numeric)
                            out[kk] += v * dense_row[col];
                    }
                    dev.globalReadScattered(warp, gather_addrs.data(),
                                            dim_k, sizeof(Float));
                }
                // Coalesced atomic accumulation of the dim_k-wide
                // result; contended rows (in-degree > 1) pay serialized
                // RMW issue.
                dev.sharedOps(in_deg[j] > 1 ? dim_k : dim_k / 4 + 1, 0);
                dev.globalAtomicAccum(warp, out, dxs.dataRowBytes());
            }
        }
    };

    if (chunks.size() <= 1) {
        if (!chunks.empty())
            walk(ctx, chunks[0], true);
        return ctx.finish(opt.efficiency);
    }

    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t,
                                        IndexRange egs) {
        walk(dev, egs, false);
    });

    // Numeric side: bitwise-deterministic gather over the stable
    // transpose (see core/transpose_gather.hh). Reads dxl directly —
    // the same values the serial loop's prefetch buffer (or the
    // no-prefetch ablation) consumed.
    gatherTransposedCbsr(a, dxl, dxs, opt.threads);
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
