#include "core/spgemm_forward.hh"

#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
spgemmForward(const CsrGraph &a, const EdgeGroupPartition &part,
              const CbsrMatrix &xs, Matrix &y, const SimOptions &opt)
{
    checkInvariant(xs.rows() == a.numNodes(),
                   "spgemmForward: CBSR row count != |V|");
    checkInvariant(part.covers(a),
                   "spgemmForward: partition does not cover A");

    const std::uint32_t dim_k = xs.dimK();
    const std::uint32_t dim_origin = xs.dimOrigin();
    y.resize(a.numNodes(), dim_origin);
    y.setZero();

    gpusim::KernelContext ctx(opt.device, "spgemm_forward",
                              opt.simulateCaches);

    // Warp packing: Case 1 packs several EGs per warp when dim_k <= 16.
    const std::uint32_t egs_per_warp = EdgeGroupPartition::egsPerWarp(dim_k);

    // EG-parallel with row-aligned chunk boundaries: all EGs of one
    // adjacency row stay in one chunk, so every output row has exactly
    // one writer accumulating in serial EG order (bitwise-identical
    // result), and the first-EG-of-row write-back discount stays local.
    const auto chunks = rowAlignedChunks(part.groups(), 32,
                                         resolveThreads(opt.threads));
    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t,
                                        IndexRange egs) {
        std::vector<Float> buf(dim_origin);
        std::vector<const void *> scatter_addrs(dim_k);
        for (std::size_t gi = egs.begin; gi < egs.end; ++gi) {
            const EdgeGroup &eg = part.groups()[gi];
            const std::uint64_t warp = gi / egs_per_warp;

            dev.usePhase("compute+accumulate");
            // Edge values and destination columns for this EG (coalesced).
            dev.globalReadStreaming(warp, &a.values()[eg.begin],
                                    (eg.end - eg.begin) * sizeof(Float));
            dev.globalReadStreaming(warp, &a.colIdx()[eg.begin],
                                    (eg.end - eg.begin) * sizeof(NodeId));

            std::fill(buf.begin(), buf.end(), 0.0f);
            Float *yr = y.row(eg.row);
            for (EdgeId e = eg.begin; e < eg.end; ++e) {
                const NodeId j = a.colIdx()[e];
                const Float v = a.values()[e];
                // CBSR fetch: both segments are contiguous, coalesced
                // reads — (4 + indexBytes) * dim_k bytes per nonzero
                // (Sec. 4.3).
                dev.globalRead(warp, xs.dataRow(j), xs.dataRowBytes());
                dev.globalRead(warp, xs.indexRowAddr(j),
                               xs.indexRowBytes());
                dev.flops(2ull * dim_k);
                const Float *data = xs.dataRow(j);
                if (opt.spgemmSharedBuffer) {
                    // Sparse accumulation into the shared-memory buffer,
                    // mapped through sp_index (Algorithm 1 line 8).
                    dev.sharedOps(dim_k, dim_k * sizeof(Float));
                    for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                        buf[xs.indexAt(j, kk)] += v * data[kk];
                } else {
                    // Ablation: scatter each product straight into global
                    // memory — one uncoalesced atomic per element.
                    for (std::uint32_t kk = 0; kk < dim_k; ++kk) {
                        const std::uint32_t col = xs.indexAt(j, kk);
                        scatter_addrs[kk] = yr + col;
                        yr[col] += v * data[kk];
                    }
                    dev.globalAtomicScattered(warp, scatter_addrs.data(),
                                              dim_k, sizeof(Float));
                }
            }

            if (opt.spgemmSharedBuffer) {
                // Stage 2 (after barrier): atomic, coalesced merge of the
                // buffer into the output row (Algorithm 1 lines 13-16).
                // The first EG of a row costs a vectorised store; every
                // further EG serializes against it (same-address RMW
                // contention), which is the k-independent low-k floor of
                // Sec. 5.2.
                dev.usePhase("writeback");
                for (std::uint32_t d = 0; d < dim_origin; ++d)
                    yr[d] += buf[d];
                const bool first_eg_of_row =
                    eg.begin == a.rowPtr()[eg.row];
                dev.sharedOps(first_eg_of_row ? dim_origin / 4
                                              : 2ull * dim_origin,
                              dim_origin * sizeof(Float));
                dev.globalAtomicAccum(warp, yr,
                                      dim_origin * sizeof(Float));
            }
        }
    });

    return ctx.finish(opt.efficiency);
}

} // namespace maxk
