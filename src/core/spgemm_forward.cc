#include "core/spgemm_forward.hh"

#include <vector>

#include "common/logging.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
spgemmForward(const CsrGraph &a, const EdgeGroupPartition &part,
              const CbsrMatrix &xs, Matrix &y, const SimOptions &opt)
{
    checkInvariant(xs.rows() == a.numNodes(),
                   "spgemmForward: CBSR row count != |V|");
    checkInvariant(part.covers(a),
                   "spgemmForward: partition does not cover A");

    const std::uint32_t dim_k = xs.dimK();
    const std::uint32_t dim_origin = xs.dimOrigin();
    y.resize(a.numNodes(), dim_origin);
    y.setZero();

    gpusim::KernelContext ctx(opt.device, "spgemm_forward",
                              opt.simulateCaches);

    // Warp packing: Case 1 packs several EGs per warp when dim_k <= 16.
    const std::uint32_t egs_per_warp = EdgeGroupPartition::egsPerWarp(dim_k);

    std::vector<Float> buf(dim_origin);
    std::vector<const void *> scatter_addrs(dim_k);
    std::size_t eg_index = 0;
    for (const EdgeGroup &eg : part.groups()) {
        const std::uint64_t warp = eg_index++ / egs_per_warp;

        ctx.usePhase("compute+accumulate");
        // Edge values and destination columns for this EG (coalesced).
        ctx.globalReadStreaming(warp, &a.values()[eg.begin],
                       (eg.end - eg.begin) * sizeof(Float));
        ctx.globalReadStreaming(warp, &a.colIdx()[eg.begin],
                       (eg.end - eg.begin) * sizeof(NodeId));

        std::fill(buf.begin(), buf.end(), 0.0f);
        Float *yr = y.row(eg.row);
        for (EdgeId e = eg.begin; e < eg.end; ++e) {
            const NodeId j = a.colIdx()[e];
            const Float v = a.values()[e];
            // CBSR fetch: both segments are contiguous, coalesced reads —
            // (4 + indexBytes) * dim_k bytes per nonzero (Sec. 4.3).
            ctx.globalRead(warp, xs.dataRow(j), xs.dataRowBytes());
            ctx.globalRead(warp, xs.indexRowAddr(j), xs.indexRowBytes());
            ctx.flops(2ull * dim_k);
            const Float *data = xs.dataRow(j);
            if (opt.spgemmSharedBuffer) {
                // Sparse accumulation into the shared-memory buffer,
                // mapped through sp_index (Algorithm 1 line 8).
                ctx.sharedOps(dim_k, dim_k * sizeof(Float));
                for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                    buf[xs.indexAt(j, kk)] += v * data[kk];
            } else {
                // Ablation: scatter each product straight into global
                // memory — one uncoalesced atomic per element.
                for (std::uint32_t kk = 0; kk < dim_k; ++kk) {
                    const std::uint32_t col = xs.indexAt(j, kk);
                    scatter_addrs[kk] = yr + col;
                    yr[col] += v * data[kk];
                }
                ctx.globalAtomicScattered(warp, scatter_addrs.data(),
                                          dim_k, sizeof(Float));
            }
        }

        if (opt.spgemmSharedBuffer) {
            // Stage 2 (after barrier): atomic, coalesced merge of the
            // buffer into the output row (Algorithm 1 lines 13-16). The
            // first EG of a row costs a vectorised store; every further
            // EG serializes against it (same-address RMW contention),
            // which is the k-independent low-k floor of Sec. 5.2.
            ctx.usePhase("writeback");
            for (std::uint32_t d = 0; d < dim_origin; ++d)
                yr[d] += buf[d];
            const bool first_eg_of_row =
                eg.begin == a.rowPtr()[eg.row];
            ctx.sharedOps(first_eg_of_row ? dim_origin / 4
                                          : 2ull * dim_origin,
                          dim_origin * sizeof(Float));
            ctx.globalAtomicAccum(warp, yr, dim_origin * sizeof(Float));
        }
    }

    return ctx.finish(opt.efficiency);
}

} // namespace maxk
