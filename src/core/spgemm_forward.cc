#include "core/spgemm_forward.hh"

#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/maxk.hh"
#include "gpusim/context.hh"

namespace maxk
{

namespace
{

/** Rows per chunk for the row-parallel select sweep (matches maxk.cc). */
constexpr std::size_t kRowGrain = 16;

/**
 * The row-wise-product aggregation sweep shared by the unfused and
 * fused kernels. When `data_onchip` is set (fused launch), the per-edge
 * sp_data fetch is charged to shared memory — the select stage of the
 * same launch produced it on-chip — instead of a global read; the
 * arithmetic is identical either way.
 */
void
runAggregation(gpusim::KernelContext &ctx, const CsrGraph &a,
               const EdgeGroupPartition &part, const CbsrMatrix &xs,
               Matrix &y, const SimOptions &opt, bool data_onchip)
{
    const std::uint32_t dim_k = xs.dimK();
    const std::uint32_t dim_origin = xs.dimOrigin();

    // Warp packing: Case 1 packs several EGs per warp when dim_k <= 16.
    const std::uint32_t egs_per_warp = EdgeGroupPartition::egsPerWarp(dim_k);

    // EG-parallel with row-aligned chunk boundaries: all EGs of one
    // adjacency row stay in one chunk, so every output row has exactly
    // one writer accumulating in serial EG order (bitwise-identical
    // result), and the first-EG-of-row write-back discount stays local.
    const auto chunks = rowAlignedChunks(part.groups(), 32,
                                         resolveThreads(opt.threads));
    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t,
                                        IndexRange egs) {
        std::vector<Float> buf(dim_origin);
        std::vector<const void *> scatter_addrs(dim_k);
        for (std::size_t gi = egs.begin; gi < egs.end; ++gi) {
            const EdgeGroup &eg = part.groups()[gi];
            const std::uint64_t warp = gi / egs_per_warp;

            dev.usePhase("compute+accumulate");
            // Edge values and destination columns for this EG (coalesced).
            dev.globalReadStreaming(warp, &a.values()[eg.begin],
                                    (eg.end - eg.begin) * sizeof(Float));
            dev.globalReadStreaming(warp, &a.colIdx()[eg.begin],
                                    (eg.end - eg.begin) * sizeof(NodeId));

            std::fill(buf.begin(), buf.end(), 0.0f);
            Float *yr = y.row(eg.row);
            for (EdgeId e = eg.begin; e < eg.end; ++e) {
                const NodeId j = a.colIdx()[e];
                const Float v = a.values()[e];
                // CBSR fetch: both segments are contiguous, coalesced
                // reads — (4 + indexBytes) * dim_k bytes per nonzero
                // (Sec. 4.3). In the fused launch the 4-byte data
                // segment never left the chip: the fetch is one
                // warp-wide ld.shared per 32 lanes (contiguous row
                // segment), not the scalar scatter path sharedOps is
                // calibrated for.
                if (data_onchip)
                    dev.sharedOps((dim_k + 31) / 32, xs.dataRowBytes());
                else
                    dev.globalRead(warp, xs.dataRow(j),
                                   xs.dataRowBytes());
                dev.globalRead(warp, xs.indexRowAddr(j),
                               xs.indexRowBytes());
                dev.flops(2ull * dim_k);
                const Float *data = xs.dataRow(j);
                if (opt.spgemmSharedBuffer) {
                    // Sparse accumulation into the shared-memory buffer,
                    // mapped through sp_index (Algorithm 1 line 8).
                    dev.sharedOps(dim_k, dim_k * sizeof(Float));
                    for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                        buf[xs.indexAt(j, kk)] += v * data[kk];
                } else {
                    // Ablation: scatter each product straight into global
                    // memory — one uncoalesced atomic per element.
                    for (std::uint32_t kk = 0; kk < dim_k; ++kk) {
                        const std::uint32_t col = xs.indexAt(j, kk);
                        scatter_addrs[kk] = yr + col;
                        yr[col] += v * data[kk];
                    }
                    dev.globalAtomicScattered(warp, scatter_addrs.data(),
                                              dim_k, sizeof(Float));
                }
            }

            if (opt.spgemmSharedBuffer) {
                // Stage 2 (after barrier): atomic, coalesced merge of the
                // buffer into the output row (Algorithm 1 lines 13-16).
                // The first EG of a row costs a vectorised store; every
                // further EG serializes against it (same-address RMW
                // contention), which is the k-independent low-k floor of
                // Sec. 5.2.
                dev.usePhase("writeback");
                for (std::uint32_t d = 0; d < dim_origin; ++d)
                    yr[d] += buf[d];
                const bool first_eg_of_row =
                    eg.begin == a.rowPtr()[eg.row];
                dev.sharedOps(first_eg_of_row ? dim_origin / 4
                                              : 2ull * dim_origin,
                              dim_origin * sizeof(Float));
                dev.globalAtomicAccum(warp, yr,
                                      dim_origin * sizeof(Float));
            }
        }
    });
}

} // namespace

gpusim::KernelStats
spgemmForward(const CsrGraph &a, const EdgeGroupPartition &part,
              const CbsrMatrix &xs, Matrix &y, const SimOptions &opt)
{
    checkInvariant(xs.rows() == a.numNodes(),
                   "spgemmForward: CBSR row count != |V|");
    checkInvariant(part.covers(a),
                   "spgemmForward: partition does not cover A");

    // ensureShape: a shape-matching relaunch must not reallocate or
    // double-fill (the setZero below is the only write before accumulate).
    y.ensureShape(a.numNodes(), xs.dimOrigin());
    y.setZero();

    gpusim::KernelContext ctx(opt.device, "spgemm_forward",
                              opt.simulateCaches);
    runAggregation(ctx, a, part, xs, y, opt, /*data_onchip=*/false);
    return ctx.finish(opt.efficiency);
}

gpusim::KernelStats
spgemmForwardFused(const CsrGraph &a, const EdgeGroupPartition &part,
                   const Matrix &x, std::uint32_t k, CbsrMatrix &xs,
                   Matrix &y, const SimOptions &opt)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spgemmForwardFused: X row count != |V|");
    checkInvariant(part.covers(a),
                   "spgemmForwardFused: partition does not cover A");
    checkInvariant(k >= 1 && k <= x.cols(),
                   "spgemmForwardFused: need 1 <= k <= dimOrigin");

    const NodeId n = static_cast<NodeId>(x.rows());
    const std::uint32_t dim = static_cast<std::uint32_t>(x.cols());
    xs.ensureShape(n, k, dim);
    y.ensureShape(a.numNodes(), dim);
    y.setZero();

    gpusim::KernelContext ctx(opt.device, "spgemm_forward_fused",
                              opt.simulateCaches);

    // Stage 1 — the maxk_select program (maxk.cc), run as the first
    // phase of this launch: buffer the row on-chip, bisect the pivot,
    // emit the survivors. sp_index goes to global (the backward pass
    // owns that pattern); sp_data stays in shared memory for stage 2.
    const auto row_chunks =
        splitRange(0, n, kRowGrain, resolveThreads(opt.threads));
    gpusim::runSharded(ctx, row_chunks, [&](auto &dev, std::uint32_t,
                                            IndexRange rows) {
        dev.usePhase("select+compress");
        std::vector<std::uint32_t> selected;
        for (std::size_t r = rows.begin; r < rows.end; ++r) {
            const std::uint64_t warp = r; // one warp per row, id == row
            const Float *row = x.row(r);
            dev.globalRead(warp, row, dim * sizeof(Float));
            dev.sharedOps(dim, dim * sizeof(Float));

            const std::uint32_t iters = pivotSelect(row, dim, k, selected);
            dev.sharedOps(std::uint64_t(iters + 1) * dim / 20, 0);
            dev.flops(std::uint64_t(iters + 1) * dim);

            Float *data = xs.dataRow(static_cast<NodeId>(r));
            for (std::uint32_t kk = 0; kk < k; ++kk) {
                data[kk] = row[selected[kk]];
                xs.setIndex(static_cast<NodeId>(r), kk, selected[kk]);
            }
            // sp_data is handed to the aggregation stage on-chip — the
            // global store (and its later reload) is the round-trip the
            // fusion removes. One warp-wide st.shared per 32 lanes.
            dev.sharedOps((k + 31) / 32, xs.dataRowBytes());
            dev.globalWrite(warp,
                            xs.indexRowAddr(static_cast<NodeId>(r)),
                            xs.indexRowBytes());
        }
    });

    // Stage 2 — identical arithmetic to spgemmForward, with the sp_data
    // fetches charged on-chip.
    runAggregation(ctx, a, part, xs, y, opt, /*data_onchip=*/true);
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
