/**
 * @file
 * Compressed Balanced Sparse Row (CBSR) format — contribution (a) of the
 * paper (Sec. 3.2).
 *
 * After the MaxK nonlinearity every node embedding row holds exactly k
 * surviving values, so the sparsified feature matrix compresses into two
 * dense N x k arrays stored in adjacent memory blocks:
 *
 *   sp_data  — the surviving fp32 values,
 *   sp_index — their column positions within the original dim_origin row.
 *
 * The fixed row length is what makes the format "balanced": every warp
 * fetches the same number of bytes per row (perfect coalescing, no
 * row-length divergence). When dim_origin <= 256 the indices fit uint8,
 * which is where Sec. 4.3's 5-bytes-per-element traffic figure comes
 * from; wider embeddings fall back to uint16.
 */

#ifndef MAXK_CORE_CBSR_HH
#define MAXK_CORE_CBSR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** CBSR-compressed sparse feature matrix (N rows, exactly dimK nnz/row). */
class CbsrMatrix
{
  public:
    CbsrMatrix() = default;

    /**
     * Allocate an N x dimK CBSR container for features whose dense width
     * is dimOrigin. Contents start zeroed.
     */
    CbsrMatrix(NodeId rows, std::uint32_t dim_k, std::uint32_t dim_origin);

    // Storage changes are reported to AllocProbe (tensor/alloc_probe.hh)
    // so tests can assert the training hot loop is allocation-free;
    // hence the explicit copy/move/destroy set.
    CbsrMatrix(const CbsrMatrix &other);
    CbsrMatrix(CbsrMatrix &&other) noexcept = default;
    CbsrMatrix &operator=(const CbsrMatrix &other);
    CbsrMatrix &operator=(CbsrMatrix &&other) noexcept;
    ~CbsrMatrix();

    NodeId rows() const { return rows_; }
    std::uint32_t dimK() const { return dimK_; }
    std::uint32_t dimOrigin() const { return dimOrigin_; }

    /** Bytes a stored index element occupies on the wire (1 or 2). */
    std::uint32_t indexBytes() const { return narrowIndex_ ? 1 : 2; }

    Float *dataRow(NodeId r) { return spData_.data() + size_t(r) * dimK_; }
    const Float *dataRow(NodeId r) const
    {
        return spData_.data() + size_t(r) * dimK_;
    }

    /** Column index of the kk-th surviving element of row r. */
    std::uint32_t
    indexAt(NodeId r, std::uint32_t kk) const
    {
        const std::size_t pos = std::size_t(r) * dimK_ + kk;
        return narrowIndex_ ? spIndex8_[pos] : spIndex16_[pos];
    }

    /** Set the column index of element (r, kk). */
    void
    setIndex(NodeId r, std::uint32_t kk, std::uint32_t column)
    {
        const std::size_t pos = std::size_t(r) * dimK_ + kk;
        if (narrowIndex_)
            spIndex8_[pos] = static_cast<std::uint8_t>(column);
        else
            spIndex16_[pos] = static_cast<std::uint16_t>(column);
    }

    /** Address of row r's index segment (for traffic accounting). */
    const void *
    indexRowAddr(NodeId r) const
    {
        const std::size_t pos = std::size_t(r) * dimK_;
        return narrowIndex_
                   ? static_cast<const void *>(spIndex8_.data() + pos)
                   : static_cast<const void *>(spIndex16_.data() + pos);
    }

    /** Bytes occupied by one row's index segment. */
    Bytes indexRowBytes() const { return Bytes(dimK_) * indexBytes(); }

    /** Bytes occupied by one row's data segment. */
    Bytes dataRowBytes() const { return Bytes(dimK_) * sizeof(Float); }

    /** Total storage footprint (sp_data + sp_index). */
    Bytes storageBytes() const;

    /** Expand to a dense N x dimOrigin matrix (zeros elsewhere). */
    void decompress(Matrix &dense) const;

    /** Zero the data segment, keeping the index pattern. */
    void zeroData();

    /**
     * Resize to the given shape, reusing the existing storage when the
     * element counts match (unlike assigning a fresh CbsrMatrix, the
     * buffers keep their addresses — which also keeps simulated traffic
     * stats reproducible across repeated kernel launches). Contents are
     * zeroed.
     */
    void reshape(NodeId rows, std::uint32_t dim_k,
                 std::uint32_t dim_origin);

    /**
     * Adopt the given shape, reusing the existing storage whenever the
     * element counts already match — guaranteed no-op in that case (no
     * reallocation, no zero-fill). Contents are unspecified after a
     * shape change; callers must fully overwrite every data and index
     * slot (the MaxK compress kernels do).
     */
    void ensureShape(NodeId rows, std::uint32_t dim_k,
                     std::uint32_t dim_origin);

    /**
     * Structural validity: every index < dimOrigin and strictly
     * ascending within each row (the MaxK kernel emits them in column
     * order, Fig. 5).
     */
    bool validate() const;

    /** Share another matrix's sparsity pattern (copies the indices). The
     *  data segment is zeroed. Used by the backward pass, which inherits
     *  sp_index from the forward activation. */
    void adoptPattern(const CbsrMatrix &other);

  private:
    NodeId rows_ = 0;
    std::uint32_t dimK_ = 0;
    std::uint32_t dimOrigin_ = 0;
    bool narrowIndex_ = true;
    std::vector<Float> spData_;
    std::vector<std::uint8_t> spIndex8_;
    std::vector<std::uint16_t> spIndex16_;
};

} // namespace maxk

#endif // MAXK_CORE_CBSR_HH
