#include "serve/batcher.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace maxk::serve
{

RequestBatcher::RequestBatcher(double deadline_sim_seconds,
                               std::uint32_t capacity)
    : deadline_(deadline_sim_seconds), capacity_(capacity)
{
    if (!(deadline_ > 0.0) || !std::isfinite(deadline_))
        fatal("RequestBatcher: deadline must be finite and > 0 "
              "(a zero deadline would dispatch every request alone, "
              "which is the non-batched path — configure capacity 1 "
              "instead)");
    if (capacity_ == 0)
        fatal("RequestBatcher: batch capacity must be >= 1");
}

void
RequestBatcher::plan(const std::vector<ServeRequest> &trace,
                     std::vector<RequestBatch> &out)
{
    out.clear();
    orderWs_.resize(trace.size());
    for (std::uint32_t i = 0; i < trace.size(); ++i)
        orderWs_[i] = i;
    // Total order (arrival, trace index): ties broken by submission
    // order, so equal-time arrivals batch deterministically.
    std::sort(orderWs_.begin(), orderWs_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (trace[a].arrivalSimSeconds !=
                      trace[b].arrivalSimSeconds)
                      return trace[a].arrivalSimSeconds <
                             trace[b].arrivalSimSeconds;
                  return a < b;
              });

    std::size_t at = 0;
    while (at < orderWs_.size()) {
        RequestBatch batch;
        const double open = trace[orderWs_[at]].arrivalSimSeconds;
        const double latest = open + deadline_;
        double dispatch = latest;
        while (at < orderWs_.size() &&
               batch.requests.size() < capacity_ &&
               trace[orderWs_[at]].arrivalSimSeconds <= latest) {
            batch.requests.push_back(orderWs_[at]);
            ++at;
        }
        if (batch.requests.size() == capacity_) {
            // Filled before the deadline: dispatch as soon as the last
            // member arrived (never earlier than the batch opener).
            dispatch = trace[batch.requests.back()].arrivalSimSeconds;
        }
        batch.dispatchSimSeconds = dispatch;
        out.push_back(std::move(batch));
    }
}

} // namespace maxk::serve
