/**
 * @file
 * Deadline-driven request batching for online inference (ISSUE 8).
 *
 * Single-node prediction requests arrive on a simulated clock; running
 * one sampled-minibatch forward per request would waste the fixed
 * per-launch cost on one row of useful output. The batcher coalesces
 * requests into minibatches under a latency contract: a batch opens
 * when its first request arrives and dispatches at
 *
 *     min(first_arrival + deadline, arrival that fills the capacity)
 *
 * so no request ever waits longer than the deadline in simulated time,
 * and no batch exceeds the forward's seed capacity. Batching is a pure
 * function of the trace (arrival times + capacity + deadline) — it
 * never looks at cache state or results — which is one half of the
 * serving determinism story: the same trace always produces the same
 * batches, and ServeSession guarantees the same batches always produce
 * the same logits.
 */

#ifndef MAXK_SERVE_BATCHER_HH
#define MAXK_SERVE_BATCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace maxk::serve
{

/** One single-vertex prediction request on the simulated clock. */
struct ServeRequest
{
    /** Arrival time in simulated seconds (any finite value; traces need
     *  not be sorted — the batcher orders them). */
    double arrivalSimSeconds = 0.0;

    /** Vertex whose logits are requested. */
    NodeId vertex = 0;
};

/** One dispatched batch: trace indices in arrival order. */
struct RequestBatch
{
    /** Simulated dispatch time: when the forward for this batch starts. */
    double dispatchSimSeconds = 0.0;

    /** Indices into the request trace, ascending (arrival, index). */
    std::vector<std::uint32_t> requests;
};

/** Deadline/capacity batching policy (see file comment). */
class RequestBatcher
{
  public:
    /**
     * @param deadline_sim_seconds max simulated wait of any request
     *                             (fatal() unless finite and > 0)
     * @param capacity             max requests per batch (fatal() on 0)
     */
    RequestBatcher(double deadline_sim_seconds, std::uint32_t capacity);

    double deadline() const { return deadline_; }
    std::uint32_t capacity() const { return capacity_; }

    /**
     * Partition `trace` into dispatch batches. Invariants (asserted by
     * tests/test_serve.cc): every request lands in exactly one batch;
     * within a batch requests are ordered by (arrival, trace index);
     * dispatch <= arrival_r + deadline for every member r;
     * dispatch >= arrival of the last member; |batch| <= capacity.
     * Deterministic: depends only on arrival times and the config.
     */
    void plan(const std::vector<ServeRequest> &trace,
              std::vector<RequestBatch> &out);

  private:
    double deadline_;
    std::uint32_t capacity_;
    std::vector<std::uint32_t> orderWs_;
};

} // namespace maxk::serve

#endif // MAXK_SERVE_BATCHER_HH
