#include "serve/trace.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace maxk::serve
{

namespace
{

bool
isSpace(char c)
{
    return c == ' ' || c == '\t' || c == '\r';
}

/** Parse one non-comment line into a request; on failure fill `msg`. */
bool
parseLine(std::string_view line, ServeRequest &out, std::string &msg)
{
    // NUL-terminated copy for strtod/strtoull (lines are short; the
    // 256-byte cap mirrors the historical fgets buffer).
    char buf[256];
    if (line.size() >= sizeof buf) {
        msg = "line longer than 255 characters";
        return false;
    }
    line.copy(buf, line.size());
    buf[line.size()] = '\0';

    char *p = buf;
    char *end = nullptr;
    errno = 0;
    const double arrival = std::strtod(p, &end);
    if (end == p) {
        msg = "expected '<arrival> <vertex>', found '" +
              std::string(buf) + "'";
        return false;
    }
    if (!std::isfinite(arrival)) {
        msg = "non-finite arrival time";
        return false;
    }
    p = end;
    if (!isSpace(*p)) {
        msg = "expected whitespace between arrival and vertex id";
        return false;
    }
    while (isSpace(*p))
        ++p;
    if (*p == '-') {
        msg = "vertex id must be non-negative";
        return false;
    }
    errno = 0;
    const unsigned long long vertex = std::strtoull(p, &end, 10);
    if (end == p) {
        msg = "expected a vertex id, found '" + std::string(p) + "'";
        return false;
    }
    if (errno == ERANGE ||
        vertex > std::numeric_limits<NodeId>::max()) {
        msg = "vertex id does not fit in 32 bits";
        return false;
    }
    p = end;
    while (isSpace(*p))
        ++p;
    if (*p != '\0' && *p != '#') {
        msg = "trailing characters after vertex id: '" +
              std::string(p) + "'";
        return false;
    }
    out.arrivalSimSeconds = arrival;
    out.vertex = static_cast<NodeId>(vertex);
    return true;
}

} // namespace

Expected<TraceParseResult, IoError>
parseServeTrace(std::string_view text, const std::string &path,
                bool strict)
{
    TraceParseResult result;
    std::uint64_t lineno = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, nl == std::string_view::npos ? text.size() - pos
                                              : nl - pos);
        ++lineno;
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

        std::size_t b = 0;
        while (b < line.size() && isSpace(line[b]))
            ++b;
        line.remove_prefix(b);
        if (line.empty() || line.front() == '#')
            continue;

        ServeRequest req;
        std::string msg;
        if (parseLine(line, req, msg)) {
            result.requests.push_back(req);
            continue;
        }
        IoError err{IoErrorCode::ParseError, path, lineno, msg};
        if (strict)
            return unexpected(std::move(err));
        result.skipped.push_back(std::move(err));
    }
    return result;
}

Expected<TraceParseResult, IoError>
loadServeTrace(const std::string &path, bool strict)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return unexpected(IoError{IoErrorCode::OpenFailed, path, 0,
                                  "cannot open trace file"});
    std::string text;
    char chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        text.append(chunk, got);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        return unexpected(IoError{IoErrorCode::OpenFailed, path, 0,
                                  "read error while loading trace"});
    return parseServeTrace(text, path, strict);
}

} // namespace maxk::serve
