/**
 * @file
 * Online inference session: the "millions of users" half of the ROADMAP
 * north star (ISSUE 8). A ServeSession answers per-vertex prediction
 * requests over a trained GnnModel by replaying a request trace through
 * RequestBatcher -> frontier planner -> (EmbeddingCache | full
 * recompute) -> GnnModel::forwardFrom.
 *
 * Determinism contract (the correctness anchor, proven by
 * tests/test_serve.cc): the logits returned for a vertex are a pure
 * function of (trained parameters, graph, features, serve seed, fanout)
 * — independent of arrival interleaving, batch composition, cache
 * fraction, and thread count. Three design rules make that hold:
 *
 *  1. Fixed per-vertex sampled adjacency. Serving samples with ONE
 *     uniform fanout and FIXED (epoch, batch) stream tags, so vertex
 *     v's sampled neighbor set adj_s(v) never depends on which batch
 *     first reached it (unlike training, where each (epoch, batch)
 *     resamples). The draw procedure is bit-for-bit the
 *     NeighborSampler's, so the reference path (NeighborSampler +
 *     MinibatchExtractor) and the planner path expand identical graphs.
 *
 *  2. Batch-invariant edge weights. Training minibatches weight edges
 *     by LOCAL sampled degrees, which vary with batch composition (a
 *     frontier vertex has an empty row in one batch and a sampled row
 *     in another). Serving instead derives every weight from the fixed
 *     sampled degree deg_s(v) = min(deg(v), fanout): SAGE 1/deg_s(row),
 *     GCN 1/sqrt(max(deg_s(i),1) * max(deg_s(j),1)), GIN 1 — applied
 *     identically on both execution paths.
 *
 *  3. Per-row compute. Every op in the forward (Linear, MaxK pivot
 *     select, ReLU, dropout-off, row-wise aggregation over ascending
 *     neighbor lists) reads and writes rows independently, so a row's
 *     value cannot depend on which other rows share its batch.
 *
 * With those rules, a cached activation row is bitwise equal to what
 * recomputing it would produce, so cache hits change stats and
 * simulated cost but never logits.
 *
 * Cost model: the container is 1-CPU and the physical forward is
 * capacity-padded (shape-constant by design), so host wall time cannot
 * show the cache win. Like the repo's other perf surfaces, serving
 * charges a deterministic structural cost model instead: planned work
 * only (gathered feature rows, computed activation rows, aggregated
 * edges, injected cache bytes) through the gemm/elementwise roofline on
 * the simulated A100. bench_serve gates those numbers in CI.
 */

#ifndef MAXK_SERVE_SESSION_HH
#define MAXK_SERVE_SESSION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hh"
#include "common/fault.hh"
#include "gpusim/device.hh"
#include "nn/model.hh"
#include "sample/extractor.hh"
#include "sample/sampler.hh"
#include "serve/batcher.hh"
#include "serve/embedding_cache.hh"

namespace maxk::serve
{

/** Serving configuration (validated by ServeSession: fatal() on a
 *  non-positive deadline, cacheFraction outside [0, 1], or zero batch
 *  capacity). */
struct ServeConfig
{
    /** Uniform per-hop fanout of the fixed serving graph (0 = seed-only
     *  MLP over features). Uniformity is required for determinism rule
     *  1 above. */
    std::uint32_t fanout = 8;

    /** Seed of the serving graph's keyed sampling streams. */
    std::uint64_t seed = 2027;

    /** Max simulated seconds a request may wait for its batch. */
    double deadlineSimSeconds = 2e-3;

    /** Max requests coalesced into one forward (also the sampler's
     *  batchSize, which fixes the padded node capacity). */
    std::uint32_t batchCapacity = 32;

    /** Fraction of |V| pinned per cacheable layer, ranked by presampled
     *  frequency (FGNN policy). 0 disables pinning. */
    double cacheFraction = 0.0;

    /** Extra LRU slots per layer admitting non-pinned vertices. */
    std::uint32_t lruSlots = 0;

    /** Pre-sampling rounds for the frequency ranking (each round
     *  samples one batchCapacity-sized uniform seed set). */
    std::uint32_t presampleBatches = 8;

    /** Simulated device for the structural cost model. */
    gpusim::DeviceConfig device = gpusim::DeviceConfig::a100();

    // ------------------------------------------------------------------
    // Overload policy (ISSUE 9). All knobs default OFF so the committed
    // serving perf baseline (bench/baselines/serve.json) is untouched:
    // with latencyBudgetSimSeconds == 0 the replay loop is byte-for-byte
    // the ISSUE 8 behaviour (per-batch latency = dispatch + service -
    // arrival, nothing shed, nothing served stale).
    // ------------------------------------------------------------------

    /**
     * Simulated end-to-end latency budget. When > 0, replay() switches
     * to a serialized-server queue model (a batch starts at
     * max(dispatch, previous batch finish)) and projects each batch's
     * worst-case request latency BEFORE executing it. A batch projected
     * over budget is first degraded (staleServeEnabled), then shed
     * (shedOnOverload); with both off the batch still runs and simply
     * reports an over-budget latency.
     */
    double latencyBudgetSimSeconds = 0.0;

    /**
     * Degraded mode: when an over-budget batch can be cheapened by
     * serving cache entries marked stale (EmbeddingCache::markAllStale
     * after a weight refresh / failover), replan with allow_stale and
     * serve the stale rows. Every request of such a batch is explicitly
     * marked ServeReport::kOutcomeStale — degraded answers are never
     * silently passed off as fresh.
     */
    bool staleServeEnabled = false;

    /**
     * Load shedding: a batch still over budget after (optional) stale
     * degradation is dropped before its forward — zeroed logits, outcome
     * kOutcomeShed, excluded from the latency percentiles. Bounds the
     * simulated p99 of the served requests under overload.
     */
    bool shedOnOverload = false;

    /**
     * Non-empty: pin exactly these vertices instead of running the
     * presample frequency ranking (restoring a persisted pinned set from
     * a checkpoint). Entries must be unique and < |V| (fatal otherwise,
     * via the EmbeddingCache invariants).
     */
    std::vector<NodeId> pinnedOverride;

    /** Optional fault injector (site "serve.replay": a ServeBurst spec
     *  appends `payload` deterministic requests to the trace tail). Not
     *  owned. */
    FaultInjector *faults = nullptr;
};

/** Typed replay failure (recoverable; no process exit). */
struct ServeError
{
    enum class Kind : std::uint8_t
    {
        InvalidRequest = 0, //!< malformed trace entry (requestIndex set)
        Shedded = 1,        //!< overload shed EVERY request of the trace
    };

    std::size_t requestIndex = 0;
    std::string message;
    Kind kind = Kind::InvalidRequest;
};

/** Per-batch serving stats (index by ServeReport::requestBatch). */
struct BatchServeStats
{
    std::uint32_t requests = 0;       //!< trace entries in this batch
    std::uint32_t seeds = 0;          //!< distinct request vertices
    std::uint64_t nodesRecomputed = 0; //!< planned activation rows
    std::uint64_t nodesInjected = 0;  //!< rows served from the cache
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t featureBytesGathered = 0;
    std::uint64_t cacheBytesInjected = 0;
    std::uint64_t edgesAggregated = 0;
    std::uint64_t staleRowsInjected = 0; //!< stale cache rows served
    bool shed = false;                //!< dropped before its forward
    double serviceSimSeconds = 0.0;   //!< structural cost of the forward
};

/** Outcome of one trace replay. */
struct ServeReport
{
    /** Per-request outcome codes (requestOutcome). */
    static constexpr std::uint8_t kOutcomeFresh = 0;
    static constexpr std::uint8_t kOutcomeStale = 1;
    static constexpr std::uint8_t kOutcomeShed = 2;

    std::uint64_t requests = 0;
    std::uint64_t batches = 0;

    // Aggregates over batchStats.
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheStores = 0;
    std::uint64_t cacheEvictions = 0;
    std::uint64_t nodesRecomputed = 0;
    std::uint64_t nodesInjected = 0;
    std::uint64_t featureBytesGathered = 0;
    std::uint64_t cacheBytesInjected = 0;
    std::uint64_t edgesAggregated = 0;

    /** Σ per-batch structural service time (the throughput basis:
     *  requestsPerSimSecond = requests / serviceSimSeconds). */
    double serviceSimSeconds = 0.0;
    double requestsPerSimSecond = 0.0;

    /**
     * Simulated request latency = batch start + service - arrival,
     * where start is the dispatch time (default) or
     * max(dispatch, previous batch finish) under the queue model
     * (latencyBudgetSimSeconds > 0). Percentiles cover SERVED requests
     * only — shed requests (latency pinned to 0) are excluded.
     */
    double p50LatencySimSeconds = 0.0;
    double p99LatencySimSeconds = 0.0;
    double maxLatencySimSeconds = 0.0;

    // Overload/degradation metering (ISSUE 9; all zero with the policy
    // knobs off).
    std::uint64_t sheddedRequests = 0;     //!< outcome kOutcomeShed
    std::uint64_t staleServedRequests = 0; //!< outcome kOutcomeStale
    std::uint64_t staleRowsInjected = 0;   //!< stale cache rows served
    std::uint64_t degradedBatches = 0;     //!< batches replanned stale
    std::uint64_t burstRequests = 0;       //!< appended by ServeBurst

    double hostSeconds = 0.0;

    /** Matrix/CbsrMatrix heap allocations from batch 2 on (0 once the
     *  persistent workspaces are warm; AllocProbe-enforced). */
    std::uint64_t steadyStateAllocCount = 0;

    /** One row per trace entry, trace order. */
    Matrix logits;

    /** Per-request simulated latency, trace order (0 when shed). */
    std::vector<double> latencySimSeconds;

    /** Per-request outcome (kOutcomeFresh/Stale/Shed), trace order. */
    std::vector<std::uint8_t> requestOutcome;

    /** Trace index -> batch index (per-request stats live in
     *  batchStats[requestBatch[i]]). */
    std::vector<std::uint32_t> requestBatch;
    std::vector<BatchServeStats> batchStats;
};

/** Online inference session over a trained model (see file comment). */
class ServeSession
{
  public:
    /**
     * @param trained  trained model; parameter values are copied into a
     *                 serving replica (the session never mutates it and
     *                 keeps its own capacity-shaped workspaces)
     * @param graph    global topology (outlives the session)
     * @param features global N x inDim feature store (outlives the
     *                 session; rows are gathered per batch — the
     *                 PyTorch-Direct gather-on-access shape)
     * @param cfg      validated serving config
     */
    ServeSession(nn::GnnModel &trained, const CsrGraph &graph,
                 const Matrix &features, const ServeConfig &cfg);

    /**
     * Replay a request trace: batch by deadline, answer every request.
     * Returns a typed error (no abort) for an out-of-range vertex or a
     * non-finite arrival time; the session state is untouched in that
     * case. Deterministic: identical traces (same arrival times and
     * vertices, any construction order of the vector) yield bitwise-
     * identical logits; stats additionally depend on prior replays
     * through cache state, logits never do.
     */
    Expected<ServeReport, ServeError>
    replay(const std::vector<ServeRequest> &trace);

    /**
     * Degrade every resident cache entry to stale (a weight refresh or
     * failover invalidated the cached activations). Subsequent replays
     * treat stale entries as misses — unless staleServeEnabled lets an
     * over-budget batch serve them explicitly marked. No-op without a
     * cache.
     */
    void degradeCache();

    const ServeConfig &config() const { return cfg_; }
    bool cacheEnabled() const { return cache_.has_value(); }
    const EmbeddingCache *cache() const
    {
        return cache_ ? &*cache_ : nullptr;
    }

    /** Fixed sampled degree deg_s(v) = min(deg(v), fanout). */
    std::uint32_t sampledDegree(NodeId v) const;

    /** Pinned vertex set (ranked order), empty when cacheFraction 0. */
    const std::vector<NodeId> &pinnedVertices() const { return pinned_; }

    /** Padded node capacity of every serving forward. */
    NodeId nodeCapacity() const { return capacity_; }

  private:
    struct LayerPlan
    {
        std::vector<NodeId> target;   //!< rows whose output h^l is needed
        std::vector<NodeId> need;     //!< activation sources T ∪ adj_s(T)
        std::vector<NodeId> computed; //!< uncached subset of need
        std::vector<std::pair<NodeId, std::int64_t>> inject; //!< (v, slot)
    };

    void presampleAndPin();
    const NodeId *sampledAdj(NodeId v); //!< memoized fixed adjacency
    void buildPlan(const std::vector<NodeId> &seeds, bool allow_stale);
    void buildLocalGraph();
    void applyServeWeights(CsrGraph &g,
                           const std::vector<NodeId> &global_ids);
    void executePlanned(BatchServeStats &bs);
    void executeReference(BatchServeStats &bs);
    double batchSimSeconds(const BatchServeStats &bs) const;

    const CsrGraph &graph_;
    const Matrix &features_;
    ServeConfig cfg_;
    std::uint32_t numLayers_ = 0;

    nn::GnnModel model_;  //!< serving replica (capacity-shaped)
    sample::NeighborSampler sampler_;
    NodeId capacity_ = 0;
    std::vector<std::uint32_t> zeroLabels_;
    sample::MinibatchExtractor extractor_;
    RequestBatcher batcher_;
    std::optional<EmbeddingCache> cache_;
    std::vector<NodeId> pinned_;

    // Memoized fixed per-vertex sampled adjacency (append-only; grows
    // until every requested vertex's frontier is resident — untracked
    // scratch, not part of the Matrix/CbsrMatrix zero-alloc contract).
    std::vector<std::int64_t> adjOff_;
    std::vector<NodeId> adjData_;
    std::vector<EdgeId> pickWs_;

    // Planner state (persistent workspaces).
    std::vector<LayerPlan> plan_;
    std::uint32_t firstActive_ = 0;
    std::vector<NodeId> nodes_;        //!< batch node set, ascending
    std::vector<NodeId> featureRows_;  //!< X[0]: rows needing real x
    std::vector<NodeId> localOf_;
    std::vector<std::uint32_t> stamp_; //!< generic per-vertex marker
    std::uint32_t curStamp_ = 0;
    std::vector<std::uint32_t> rowStamp_;
    std::uint32_t curRowStamp_ = 0;
    std::vector<NodeId> unionWs_;

    // Execution workspaces.
    std::vector<ServeRequest> burstWs_; //!< trace + ServeBurst appendix
    std::vector<RequestBatch> batchesWs_;
    std::vector<NodeId> seedsWs_;
    sample::SampleBatch batchWs_;
    sample::Minibatch mbWs_;
    CsrGraph localGraph_;
    std::vector<EdgeId> rowPtrStage_;
    std::vector<NodeId> colIdxStage_;
    Matrix xIn_;       //!< capacity x inDim gathered features
    Matrix hiddenWs_;  //!< capacity x hiddenDim input for firstActive > 0
    const Matrix *logitsWs_ = nullptr; //!< last forward's logits
};

} // namespace maxk::serve

#endif // MAXK_SERVE_SESSION_HH
