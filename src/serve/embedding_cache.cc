#include "serve/embedding_cache.hh"

#include <utility>

#include "common/logging.hh"

namespace maxk::serve
{

EmbeddingCache::EmbeddingCache(NodeId num_nodes,
                               std::vector<LayerSpec> specs,
                               const std::vector<NodeId> &pinned,
                               std::uint32_t lru_slots)
    : numNodes_(num_nodes),
      pinnedCount_(static_cast<NodeId>(pinned.size())),
      lruSlots_(lru_slots)
{
    checkInvariant(!specs.empty(), "EmbeddingCache: no layer specs");
    pinnedSlotOf_.assign(numNodes_, -1);
    for (std::size_t p = 0; p < pinned.size(); ++p) {
        const NodeId v = pinned[p];
        checkInvariant(v < numNodes_,
                       "EmbeddingCache: pinned vertex out of range");
        checkInvariant(pinnedSlotOf_[v] < 0,
                       "EmbeddingCache: duplicate pinned vertex");
        pinnedSlotOf_[v] = static_cast<std::int64_t>(p);
    }

    const NodeId slots = slotCapacity();
    layers_.reserve(specs.size());
    for (LayerSpec &spec : specs) {
        checkInvariant(spec.dimK >= 1 && spec.dimK <= spec.dimOrigin,
                       "EmbeddingCache: bad layer spec");
        Layer layer;
        layer.spec = spec;
        layer.store =
            CbsrMatrix(slots, spec.dimK, spec.dimOrigin);
        layer.slotOf.assign(numNodes_, -1);
        layer.vertexOf.assign(slots, 0);
        layer.touch.assign(slots, 0);
        layer.stale.assign(slots, 0);
        layers_.push_back(std::move(layer));
    }
}

std::int64_t
EmbeddingCache::lookup(std::uint32_t layer, NodeId v, bool allow_stale)
{
    Layer &ly = layers_[layer];
    const std::int64_t slot = ly.slotOf[v];
    if (slot < 0) {
        ++stats_.misses;
        return -1;
    }
    if (ly.stale[static_cast<std::size_t>(slot)]) {
        if (!allow_stale) {
            ++stats_.misses;
            return -1;
        }
        ++stats_.staleServed;
    }
    ++stats_.hits;
    if (slot >= static_cast<std::int64_t>(pinnedCount_))
        ly.touch[static_cast<std::size_t>(slot)] = ++clock_;
    return slot;
}

void
EmbeddingCache::markAllStale()
{
    for (Layer &ly : layers_)
        for (NodeId v = 0; v < numNodes_; ++v)
            if (ly.slotOf[v] >= 0)
                ly.stale[static_cast<std::size_t>(ly.slotOf[v])] = 1;
}

std::int64_t
EmbeddingCache::admit(std::uint32_t layer, NodeId v)
{
    Layer &ly = layers_[layer];
    if (ly.slotOf[v] >= 0) {
        // Refresh path: a stale entry's slot is reused in place; the
        // caller stores the freshly computed row over it.
        const std::int64_t slot = ly.slotOf[v];
        checkInvariant(ly.stale[static_cast<std::size_t>(slot)] != 0,
                       "EmbeddingCache::admit: entry already valid");
        ly.stale[static_cast<std::size_t>(slot)] = 0;
        if (slot >= static_cast<std::int64_t>(pinnedCount_))
            ly.touch[static_cast<std::size_t>(slot)] = ++clock_;
        ++stats_.refreshed;
        ++stats_.stores;
        return slot;
    }
    // Pinned vertices own their reserved slot in every layer store.
    if (pinnedSlotOf_[v] >= 0) {
        const std::int64_t slot = pinnedSlotOf_[v];
        ly.slotOf[v] = slot;
        ly.vertexOf[static_cast<std::size_t>(slot)] = v;
        ly.stale[static_cast<std::size_t>(slot)] = 0;
        ++stats_.stores;
        return slot;
    }
    if (lruSlots_ == 0) {
        ++stats_.rejected;
        return -1;
    }
    std::int64_t slot;
    if (ly.lruUsed < lruSlots_) {
        slot = static_cast<std::int64_t>(pinnedCount_ + ly.lruUsed);
        ++ly.lruUsed;
    } else {
        // Evict the least-recently-touched LRU entry. Stamps are unique
        // (one global counter), so the victim is deterministic.
        const std::size_t lo = pinnedCount_;
        const std::size_t hi = pinnedCount_ + lruSlots_;
        std::size_t victim = lo;
        for (std::size_t s = lo + 1; s < hi; ++s)
            if (ly.touch[s] < ly.touch[victim])
                victim = s;
        ly.slotOf[ly.vertexOf[victim]] = -1;
        ++stats_.evictions;
        slot = static_cast<std::int64_t>(victim);
    }
    ly.slotOf[v] = slot;
    ly.vertexOf[static_cast<std::size_t>(slot)] = v;
    ly.touch[static_cast<std::size_t>(slot)] = ++clock_;
    ly.stale[static_cast<std::size_t>(slot)] = 0;
    ++stats_.stores;
    return slot;
}

void
EmbeddingCache::storeCbsrRow(std::uint32_t layer, std::int64_t slot,
                             const CbsrMatrix &src, NodeId src_row)
{
    Layer &ly = layers_[layer];
    checkInvariant(src.dimK() == ly.spec.dimK &&
                       src.dimOrigin() == ly.spec.dimOrigin,
                   "EmbeddingCache::storeCbsrRow: shape mismatch");
    const std::uint32_t k = ly.spec.dimK;
    const Float *sd = src.dataRow(src_row);
    Float *dd = ly.store.dataRow(static_cast<NodeId>(slot));
    for (std::uint32_t kk = 0; kk < k; ++kk) {
        dd[kk] = sd[kk];
        ly.store.setIndex(static_cast<NodeId>(slot), kk,
                          src.indexAt(src_row, kk));
    }
}

void
EmbeddingCache::loadCbsrRow(std::uint32_t layer, std::int64_t slot,
                            CbsrMatrix &dst, NodeId dst_row) const
{
    const Layer &ly = layers_[layer];
    checkInvariant(dst.dimK() == ly.spec.dimK &&
                       dst.dimOrigin() == ly.spec.dimOrigin,
                   "EmbeddingCache::loadCbsrRow: shape mismatch");
    const std::uint32_t k = ly.spec.dimK;
    const Float *sd = ly.store.dataRow(static_cast<NodeId>(slot));
    Float *dd = dst.dataRow(dst_row);
    for (std::uint32_t kk = 0; kk < k; ++kk) {
        dd[kk] = sd[kk];
        dst.setIndex(dst_row, kk,
                     ly.store.indexAt(static_cast<NodeId>(slot), kk));
    }
}

void
EmbeddingCache::storeDenseRow(std::uint32_t layer, std::int64_t slot,
                              const Float *src)
{
    Layer &ly = layers_[layer];
    checkInvariant(ly.spec.dimK == ly.spec.dimOrigin,
                   "EmbeddingCache::storeDenseRow: layer is CBSR");
    Float *dd = ly.store.dataRow(static_cast<NodeId>(slot));
    for (std::uint32_t c = 0; c < ly.spec.dimK; ++c) {
        dd[c] = src[c];
        ly.store.setIndex(static_cast<NodeId>(slot), c, c);
    }
}

void
EmbeddingCache::loadDenseRow(std::uint32_t layer, std::int64_t slot,
                             Float *dst) const
{
    const Layer &ly = layers_[layer];
    const Float *sd = ly.store.dataRow(static_cast<NodeId>(slot));
    // Identity indices by construction: a straight row copy is the
    // bitwise round-trip.
    for (std::uint32_t c = 0; c < ly.spec.dimK; ++c)
        dst[c] = sd[c];
}

Bytes
EmbeddingCache::rowBytes(std::uint32_t layer) const
{
    const CbsrMatrix &store = layers_[layer].store;
    return store.dataRowBytes() + store.indexRowBytes();
}

Bytes
EmbeddingCache::storageBytes() const
{
    Bytes total = 0;
    for (const Layer &ly : layers_)
        total += ly.store.storageBytes();
    return total;
}

Bytes
EmbeddingCache::denseEquivalentBytes() const
{
    Bytes total = 0;
    for (const Layer &ly : layers_)
        total += Bytes(slotCapacity()) * ly.spec.dimOrigin * sizeof(Float);
    return total;
}

} // namespace maxk::serve
