/**
 * @file
 * Typed request-trace parsing for the serving tools (ISSUE 9 satellite).
 *
 * A trace file is plain text, one request per line:
 *
 *     <arrival-sim-seconds> <vertex-id>
 *
 * with `#` comments and blank lines ignored. Malformed lines used to
 * make maxk-serve bail out with a generic "cannot read trace file"
 * message; parsing now reports a typed IoError carrying the
 * 1-based line number and what exactly was wrong, and the caller picks
 * the policy: strict mode aborts on the first malformed line, lenient
 * mode skips it (collecting every skip for diagnostics) and keeps
 * going.
 */

#ifndef MAXK_SERVE_TRACE_HH
#define MAXK_SERVE_TRACE_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hh"
#include "graph/formats/io_error.hh"
#include "serve/batcher.hh"

namespace maxk::serve
{

/** Outcome of parsing a request trace. */
struct TraceParseResult
{
    std::vector<ServeRequest> requests; //!< well-formed lines, file order

    /** Malformed lines skipped in lenient mode (ParseError, line set).
     *  Always empty in strict mode — the first one is returned as the
     *  Expected error instead. */
    std::vector<IoError> skipped;
};

/**
 * Parse trace text. `path` labels errors only (no I/O happens here).
 * Strict: the first malformed line fails the parse with a ParseError
 * naming the line. Lenient: malformed lines land in `skipped` and
 * parsing continues. Either way a well-formed line must be exactly
 * `<finite arrival> <vertex>` — trailing junk, non-finite arrivals, and
 * vertex ids that do not fit in 32 bits are malformed (range checking
 * against |V| stays in ServeSession::replay, which knows the graph).
 */
Expected<TraceParseResult, IoError>
parseServeTrace(std::string_view text, const std::string &path,
                bool strict);

/** Read and parse a trace file (OpenFailed when unreadable). */
Expected<TraceParseResult, IoError>
loadServeTrace(const std::string &path, bool strict);

} // namespace maxk::serve

#endif // MAXK_SERVE_TRACE_HH
