#include "serve/session.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "common/trace.hh"
#include "kernels/gemm_cost.hh"
#include "tensor/alloc_probe.hh"

namespace maxk::serve
{

namespace
{

/**
 * Fixed (epoch, batch) stream tags of the serving graph. Every serving
 * sample — planner adjacency draws, the reference path, and the
 * pre-sampling ranking — uses these constants, so a vertex's sampled
 * neighborhood is the same in every batch it appears in (determinism
 * rule 1 in session.hh). They only need to be fixed, not special.
 */
constexpr std::uint32_t kServeEpochTag = 0x05E12EEDu;
constexpr std::uint32_t kServeBatchTag = 0x00CA11EDu;

/** Tag separating the presample seed-draw stream from everything else. */
constexpr std::uint64_t kPresampleTag = 0xF12E9CA9ull;

/** Batches before the steady-state allocation window opens. */
constexpr std::size_t kWarmupBatches = 2;

ServeConfig
validated(const ServeConfig &cfg)
{
    // The deadline itself is validated by RequestBatcher (fatal on a
    // zero/negative/non-finite value); the remaining knobs are checked
    // here so every invalid config dies with a serving-specific message.
    if (std::isnan(cfg.cacheFraction) || cfg.cacheFraction < 0.0 ||
        cfg.cacheFraction > 1.0)
        fatal("ServeSession: cacheFraction must be in [0, 1]");
    if (cfg.batchCapacity == 0)
        fatal("ServeSession: batchCapacity must be >= 1");
    if (std::isnan(cfg.latencyBudgetSimSeconds) ||
        cfg.latencyBudgetSimSeconds < 0.0)
        fatal("ServeSession: latencyBudgetSimSeconds must be >= 0");
    return cfg;
}

sample::SamplerConfig
samplerConfigFor(const ServeConfig &cfg, std::uint32_t num_layers)
{
    sample::SamplerConfig scfg;
    scfg.fanouts.assign(num_layers, cfg.fanout);
    scfg.batchSize = cfg.batchCapacity;
    scfg.seed = cfg.seed;
    return scfg;
}

} // namespace

ServeSession::ServeSession(nn::GnnModel &trained, const CsrGraph &graph,
                           const Matrix &features, const ServeConfig &cfg)
    : graph_(graph), features_(features), cfg_(validated(cfg)),
      numLayers_(trained.config().numLayers), model_(trained.config()),
      sampler_(graph, samplerConfigFor(cfg_, numLayers_)),
      capacity_(sampler_.nodeCapacity()),
      zeroLabels_(graph.numNodes(), 0),
      extractor_(capacity_, nn::aggregatorFor(trained.config().kind),
                 features, zeroLabels_, nullptr),
      batcher_(cfg_.deadlineSimSeconds, cfg_.batchCapacity)
{
    const NodeId n = graph_.numNodes();
    checkInvariant(features_.rows() == n,
                   "ServeSession: feature rows != |V|");
    checkInvariant(features_.cols() == trained.config().inDim,
                   "ServeSession: feature width != model inDim");

    // Serving replica: same config, parameter values copied. The
    // session owns its capacity-shaped workspaces, so serving never
    // perturbs the training model's (or an eval replica's) buffers.
    const nn::ParamRefs src = trained.params();
    const nn::ParamRefs dst = model_.params();
    checkInvariant(src.size() == dst.size(),
                   "ServeSession: replica parameter mismatch");
    for (std::size_t i = 0; i < src.size(); ++i)
        dst[i]->value = src[i]->value;

    adjOff_.assign(n, -1);
    localOf_.assign(n, 0);
    stamp_.assign(n, 0);
    rowStamp_.assign(n, 0);
    plan_.resize(numLayers_);

    // Pre-size the forward inputs so a late first occurrence of a
    // fully-cached batch (firstActive > 0) cannot allocate inside the
    // steady-state window.
    xIn_.ensureShape(capacity_, features_.cols());
    hiddenWs_.ensureShape(capacity_, trained.config().hiddenDim);

    presampleAndPin();
}

std::uint32_t
ServeSession::sampledDegree(NodeId v) const
{
    const EdgeId deg = graph_.degree(v);
    return static_cast<std::uint32_t>(
        std::min<EdgeId>(deg, cfg_.fanout));
}

void
ServeSession::presampleAndPin()
{
    const NodeId n = graph_.numNodes();
    const std::uint32_t cacheable = numLayers_ >= 2 ? numLayers_ - 1 : 0;
    NodeId pin_count = static_cast<NodeId>(
        std::min<double>(cfg_.cacheFraction * static_cast<double>(n) + 0.5,
                         static_cast<double>(n)));
    if (cacheable == 0)
        pin_count = 0; // a 1-layer model has no cacheable activations

    if (cacheable > 0 && !cfg_.pinnedOverride.empty()) {
        // Persisted pinned set (e.g. restored from a checkpoint): pin
        // exactly these vertices, bypassing the presample ranking. The
        // EmbeddingCache constructor enforces uniqueness and range.
        pinned_ = cfg_.pinnedOverride;
        pin_count = static_cast<NodeId>(pinned_.size());
    } else if (pin_count > 0) {
        // FGNN pre-sampling: run the serving sampler over uniform seed
        // batches and count how often each vertex lands in a sampled
        // block; hot (high-frequency) vertices are the ones steady-state
        // traffic keeps re-expanding.
        std::vector<std::uint64_t> freq(n, 0);
        for (std::uint32_t r = 0; r < cfg_.presampleBatches; ++r) {
            Rng rng(rngKey(cfg_.seed, kPresampleTag, r));
            seedsWs_.clear();
            for (std::uint32_t i = 0; i < cfg_.batchCapacity; ++i)
                seedsWs_.push_back(
                    static_cast<NodeId>(rng.nextBounded(n)));
            sampler_.sample(kServeEpochTag, kServeBatchTag, seedsWs_,
                            batchWs_);
            for (const NodeId v : batchWs_.nodes)
                ++freq[v];
        }
        std::vector<NodeId> rank(n);
        std::iota(rank.begin(), rank.end(), NodeId{0});
        std::sort(rank.begin(), rank.end(),
                  [&](NodeId a, NodeId b) {
                      if (freq[a] != freq[b])
                          return freq[a] > freq[b];
                      return a < b;
                  });
        pinned_.assign(rank.begin(), rank.begin() + pin_count);
    }

    if (cacheable > 0 && (pin_count > 0 || cfg_.lruSlots > 0)) {
        std::vector<EmbeddingCache::LayerSpec> specs(cacheable);
        for (std::uint32_t l = 0; l < cacheable; ++l) {
            specs[l].dimOrigin =
                static_cast<std::uint32_t>(model_.layerOutDim(l));
            specs[l].cbsr =
                model_.config().nonlin == nn::Nonlinearity::MaxK;
            specs[l].dimK = specs[l].cbsr
                                ? model_.layers()[l].effectiveK()
                                : specs[l].dimOrigin;
        }
        cache_.emplace(n, std::move(specs), pinned_, cfg_.lruSlots);
    }
}

const NodeId *
ServeSession::sampledAdj(NodeId v)
{
    if (adjOff_[v] >= 0)
        return adjData_.data() + adjOff_[v];
    const std::int64_t off = static_cast<std::int64_t>(adjData_.size());
    const EdgeId e0 = graph_.rowPtr()[v];
    const EdgeId deg = graph_.degree(v);
    const std::uint32_t f = cfg_.fanout;
    if (f == 0) {
        // Seed-only serving: empty adjacency everywhere.
    } else if (deg <= f) {
        adjData_.insert(adjData_.end(), graph_.colIdx().begin() + e0,
                        graph_.colIdx().begin() + e0 + deg);
    } else {
        // Bit-for-bit the NeighborSampler draw with the serve tags:
        // partial Fisher-Yates over edge positions from the per-vertex
        // keyed stream, then ascending order.
        Rng rng(rngKey(cfg_.seed, kServeEpochTag, kServeBatchTag, v));
        pickWs_.resize(deg);
        std::iota(pickWs_.begin(), pickWs_.end(), EdgeId{0});
        for (std::uint32_t t = 0; t < f; ++t) {
            const std::uint64_t j = t + rng.nextBounded(deg - t);
            std::swap(pickWs_[t], pickWs_[j]);
        }
        for (std::uint32_t t = 0; t < f; ++t)
            adjData_.push_back(graph_.colIdx()[e0 + pickWs_[t]]);
        std::sort(adjData_.begin() + off, adjData_.end());
    }
    adjOff_[v] = off;
    return adjData_.data() + off;
}

void
ServeSession::buildPlan(const std::vector<NodeId> &seeds, bool allow_stale)
{
    // Need-set recursion, top layer down. T[l] holds the rows whose
    // layer-l OUTPUT h^l must be correct; the activation sources of
    // layer l are need = T ∪ adj_s(T) (the T part feeds GIN's eps term
    // and keeps the recursion uniform across kinds). Cached sources are
    // injected; uncached ones are computed from layer input X[l] =
    // computed ∪ (SAGE ? T : ∅) — which is exactly T[l-1], the rows the
    // previous layer must produce. With an empty cache this collapses
    // to T[l] = ball_{L-1-l}(seeds): the NeighborSampler's flattened
    // block (cross-checked in executeReference).
    const bool sage = model_.config().kind == nn::GnnKind::Sage;

    plan_[numLayers_ - 1].target = seeds;
    for (std::uint32_t l = numLayers_; l-- > 0;) {
        LayerPlan &lp = plan_[l];
        lp.need.clear();
        lp.computed.clear();
        lp.inject.clear();
        if (++curStamp_ == 0) {
            stamp_.assign(stamp_.size(), 0);
            curStamp_ = 1;
        }
        for (const NodeId v : lp.target) {
            if (stamp_[v] != curStamp_) {
                stamp_[v] = curStamp_;
                lp.need.push_back(v);
            }
            const NodeId *adj = sampledAdj(v);
            const std::uint32_t dv = sampledDegree(v);
            for (std::uint32_t t = 0; t < dv; ++t) {
                const NodeId u = adj[t];
                if (stamp_[u] != curStamp_) {
                    stamp_[u] = curStamp_;
                    lp.need.push_back(u);
                }
            }
        }
        std::sort(lp.need.begin(), lp.need.end());

        const bool cacheable = cache_.has_value() && l + 1 < numLayers_;
        for (const NodeId u : lp.need) {
            const std::int64_t slot =
                cacheable ? cache_->lookup(l, u, allow_stale) : -1;
            if (slot >= 0)
                lp.inject.emplace_back(u, slot);
            else
                lp.computed.push_back(u);
        }

        if (l > 0) {
            std::vector<NodeId> &nt = plan_[l - 1].target;
            nt.clear();
            if (sage)
                std::set_union(lp.computed.begin(), lp.computed.end(),
                               lp.target.begin(), lp.target.end(),
                               std::back_inserter(nt));
            else
                nt = lp.computed;
        }
    }

    firstActive_ = 0;
    while (firstActive_ + 1 < numLayers_ &&
           plan_[firstActive_].target.empty())
        ++firstActive_;

    // Feature gather set X[0] (empty when layer 0 is fully skipped).
    featureRows_.clear();
    if (firstActive_ == 0) {
        const LayerPlan &lp0 = plan_[0];
        if (sage)
            std::set_union(lp0.computed.begin(), lp0.computed.end(),
                           lp0.target.begin(), lp0.target.end(),
                           std::back_inserter(featureRows_));
        else
            featureRows_ = lp0.computed;
    }

    // Batch node set: union of every layer's activation sources.
    if (++curStamp_ == 0) {
        stamp_.assign(stamp_.size(), 0);
        curStamp_ = 1;
    }
    nodes_.clear();
    for (std::uint32_t l = 0; l < numLayers_; ++l)
        for (const NodeId u : plan_[l].need)
            if (stamp_[u] != curStamp_) {
                stamp_[u] = curStamp_;
                nodes_.push_back(u);
            }
    std::sort(nodes_.begin(), nodes_.end());
    checkInvariant(nodes_.size() <= capacity_,
                   "ServeSession: plan exceeds node capacity");
    for (std::size_t r = 0; r < nodes_.size(); ++r)
        localOf_[nodes_[r]] = static_cast<NodeId>(r);

    // Row set: vertices needing sampled out-edges in the local CSR.
    if (++curRowStamp_ == 0) {
        rowStamp_.assign(rowStamp_.size(), 0);
        curRowStamp_ = 1;
    }
    for (std::uint32_t l = 0; l < numLayers_; ++l)
        for (const NodeId v : plan_[l].target)
            rowStamp_[v] = curRowStamp_;
}

void
ServeSession::buildLocalGraph()
{
    const std::size_t nl = nodes_.size();
    rowPtrStage_.assign(capacity_ + 1, 0);
    for (std::size_t r = 0; r < nl; ++r) {
        const NodeId v = nodes_[r];
        rowPtrStage_[r + 1] =
            rowStamp_[v] == curRowStamp_ ? sampledDegree(v) : 0;
    }
    for (std::size_t r = 0; r < capacity_; ++r)
        rowPtrStage_[r + 1] += rowPtrStage_[r];
    colIdxStage_.resize(rowPtrStage_[capacity_]);
    for (std::size_t r = 0; r < nl; ++r) {
        const NodeId v = nodes_[r];
        if (rowStamp_[v] != curRowStamp_)
            continue;
        const NodeId *adj = sampledAdj(v);
        const std::uint32_t dv = sampledDegree(v);
        EdgeId at = rowPtrStage_[r];
        for (std::uint32_t t = 0; t < dv; ++t)
            colIdxStage_[at++] = localOf_[adj[t]];
    }
    localGraph_ = CsrGraph::fromCsr(capacity_, std::move(rowPtrStage_),
                                    std::move(colIdxStage_));
    applyServeWeights(localGraph_, nodes_);
    rowPtrStage_.clear();
    colIdxStage_.clear();
}

void
ServeSession::applyServeWeights(CsrGraph &g,
                                const std::vector<NodeId> &global_ids)
{
    // Batch-invariant weights from fixed sampled degrees (determinism
    // rule 2 in the file comment). Applied identically on the planner
    // and reference paths, overwriting whatever local-degree convention
    // the graph carried.
    const nn::GnnKind kind = model_.config().kind;
    std::vector<Float> &vals = g.mutableValues();
    vals.resize(g.numEdges(), 1.0f);
    const std::vector<EdgeId> &rp = g.rowPtr();
    const std::vector<NodeId> &ci = g.colIdx();
    for (std::size_t r = 0; r < global_ids.size(); ++r) {
        const EdgeId b = rp[r];
        const EdgeId e = rp[r + 1];
        if (b == e)
            continue;
        switch (kind) {
          case nn::GnnKind::Sage: {
            // Row length == deg_s(row): the row carries exactly the
            // fixed sampled adjacency on both paths.
            const Float w = 1.0f / static_cast<Float>(e - b);
            for (EdgeId t = b; t < e; ++t)
                vals[t] = w;
            break;
          }
          case nn::GnnKind::Gcn: {
            const Float di = static_cast<Float>(
                std::max<std::uint32_t>(sampledDegree(global_ids[r]), 1));
            for (EdgeId t = b; t < e; ++t) {
                const Float dj = static_cast<Float>(
                    std::max<std::uint32_t>(
                        sampledDegree(global_ids[ci[t]]), 1));
                vals[t] = 1.0f / std::sqrt(di * dj);
            }
            break;
          }
          case nn::GnnKind::Gin:
            for (EdgeId t = b; t < e; ++t)
                vals[t] = 1.0f;
            break;
        }
    }
}

void
ServeSession::executePlanned(BatchServeStats &bs)
{
    buildLocalGraph();

    const Matrix *input = &xIn_;
    if (firstActive_ == 0) {
        const std::size_t dim = features_.cols();
        for (const NodeId v : featureRows_) {
            const Float *src = features_.row(v);
            Float *dst = xIn_.row(localOf_[v]);
            std::copy(src, src + dim, dst);
        }
    } else {
        // Every activation below firstActive comes from the cache; the
        // input contents are never read through to the logits (computed
        // rows are empty at that layer), so the persistent scratch
        // buffer is fine — it only has to be finite and shape-correct.
        input = &hiddenWs_;
    }

    auto hook = [&](std::uint32_t l, nn::GnnLayer &layer) {
        const LayerPlan &lp = plan_[l];
        const bool cb = layer.activationIsCbsr();
        for (const auto &[v, slot] : lp.inject) {
            const NodeId r = localOf_[v];
            if (cb)
                cache_->loadCbsrRow(l, slot, layer.activationCbsr(), r);
            else
                cache_->loadDenseRow(l, slot,
                                     layer.activationDense().row(r));
        }
        if (cache_ && l + 1 < numLayers_) {
            for (const NodeId v : lp.computed) {
                const std::int64_t slot = cache_->admit(l, v);
                if (slot < 0)
                    continue;
                const NodeId r = localOf_[v];
                if (cb)
                    cache_->storeCbsrRow(l, slot, layer.activationCbsr(),
                                         r);
                else
                    cache_->storeDenseRow(
                        l, slot, layer.activationDense().row(r));
            }
        }
    };
    logitsWs_ =
        &model_.forwardFrom(firstActive_, localGraph_, *input, false,
                            hook);
    (void)bs;
}

void
ServeSession::executeReference(BatchServeStats &bs)
{
    sampler_.sample(kServeEpochTag, kServeBatchTag, seedsWs_, batchWs_);
    // Structural cross-check: with no cache the planner's node set must
    // be exactly the sampler's flattened k-hop block.
    checkInvariant(batchWs_.nodes == nodes_,
                   "ServeSession: planner/sampler node-set mismatch");
    extractor_.extract(batchWs_, mbWs_);
    applyServeWeights(mbWs_.graph, batchWs_.nodes);
    logitsWs_ = &model_.forward(mbWs_.graph, mbWs_.features, false);
    (void)bs;
}

double
ServeSession::batchSimSeconds(const BatchServeStats &bs) const
{
    // Structural roofline over PLANNED work. The physical forward is
    // capacity-padded (shape-constant on purpose), so the cache win is
    // visible only in planned rows/edges/bytes — the same stance as
    // profileEpoch vs the functional training path. The serving forward
    // is modeled as graph-captured: launch overhead is charged ONCE per
    // executed layer (the explicit term below), so each roofline call's
    // embedded per-call overhead is stripped — otherwise fixed launch
    // cost dominates the per-batch time and masks the cache win.
    const gpusim::DeviceConfig &dev = cfg_.device;
    const double launch = dev.launchOverheadUs * 1e-6;
    double s = launch * static_cast<double>(numLayers_ - firstActive_ + 1);
    s += elementwiseSimSeconds(bs.featureBytesGathered / sizeof(Float),
                               dev) -
         launch;
    const bool sage = model_.config().kind == nn::GnnKind::Sage;
    const bool maxk = model_.config().nonlin == nn::Nonlinearity::MaxK;
    for (std::uint32_t l = firstActive_; l < numLayers_; ++l) {
        const LayerPlan &lp = plan_[l];
        const std::uint64_t m = lp.computed.size();
        const std::uint64_t t = lp.target.size();
        const std::uint64_t in_dim = model_.layerInDim(l);
        const std::uint64_t out_dim = model_.layerOutDim(l);
        if (m > 0) {
            s += gemmSimSeconds(m, in_dim, out_dim, dev) - launch;
            s += elementwiseSimSeconds(m * out_dim, dev) - launch;
        }
        if (sage && t > 0)
            s += gemmSimSeconds(t, in_dim, out_dim, dev) - launch;
        std::uint64_t edges = 0;
        for (const NodeId v : lp.target)
            edges += sampledDegree(v);
        const std::uint64_t width =
            maxk && l + 1 < numLayers_
                ? std::min<std::uint64_t>(model_.config().maxkK, out_dim)
                : out_dim;
        s += elementwiseSimSeconds(edges * width + t * out_dim, dev) -
             launch;
        if (cache_ && l + 1 < numLayers_) {
            const double inject_bytes =
                static_cast<double>(lp.inject.size()) *
                static_cast<double>(cache_->rowBytes(l));
            s += inject_bytes / (dev.hbmGBs * 1e9);
        }
    }
    return s;
}

void
ServeSession::degradeCache()
{
    if (cache_)
        cache_->markAllStale();
}

Expected<ServeReport, ServeError>
ServeSession::replay(const std::vector<ServeRequest> &trace)
{
    const NodeId n = graph_.numNodes();

    // ServeBurst fault (ISSUE 9): extend the trace with a deterministic
    // burst of `payload` requests that all arrive at the trace's last
    // arrival instant — the overload shape the shed/degrade policy is
    // built for. Vertices come from a keyed stream, so the same plan
    // always appends the same burst.
    const std::vector<ServeRequest> *req = &trace;
    std::uint64_t burst = 0;
    if (cfg_.faults) {
        if (const FaultSpec *f = cfg_.faults->fire("serve.replay")) {
            if (f->kind != FaultKind::ServeBurst)
                throw InjectedFault(*f);
            burst = f->payload;
            burstWs_.assign(trace.begin(), trace.end());
            double at = 0.0;
            for (const ServeRequest &r : trace)
                if (std::isfinite(r.arrivalSimSeconds))
                    at = std::max(at, r.arrivalSimSeconds);
            Rng rng(rngKey(cfg_.seed, 0xB125Cull, f->occurrence, burst));
            for (std::uint64_t i = 0; i < burst; ++i)
                burstWs_.push_back(ServeRequest{
                    at, static_cast<NodeId>(rng.nextBounded(n))});
            req = &burstWs_;
        }
    }
    const std::vector<ServeRequest> &reqs = *req;

    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!std::isfinite(reqs[i].arrivalSimSeconds))
            return unexpected(ServeError{
                i, "non-finite arrival time in request trace"});
        if (reqs[i].vertex >= n)
            return unexpected(ServeError{
                i, "request vertex " + std::to_string(reqs[i].vertex) +
                       " out of range (|V| = " + std::to_string(n) +
                       ")"});
    }

    Stopwatch watch;
    ServeReport rep;
    rep.requests = reqs.size();
    rep.burstRequests = burst;
    batcher_.plan(reqs, batchesWs_);
    rep.batches = batchesWs_.size();
    rep.logits.ensureShape(reqs.size(), model_.config().outDim);
    rep.latencySimSeconds.assign(reqs.size(), 0.0);
    rep.requestOutcome.assign(reqs.size(), ServeReport::kOutcomeFresh);
    rep.requestBatch.assign(reqs.size(), 0);
    rep.batchStats.reserve(batchesWs_.size());

    // Overload policy (all off when the budget is 0, which reduces this
    // loop to the ISSUE 8 behaviour bit for bit): a serialized server
    // starts each batch when the previous one finished, projects the
    // batch's worst-case request latency from its PLANNED work before
    // executing anything, and degrades (stale replan) then sheds when
    // the projection blows the budget.
    const double budget = cfg_.latencyBudgetSimSeconds;
    const bool queue_model = budget > 0.0;
    double server_free = 0.0;

    const CacheStats cache_base =
        cache_ ? cache_->stats() : CacheStats{};
    std::uint64_t alloc_base = 0;

    for (std::size_t bi = 0; bi < batchesWs_.size(); ++bi) {
        MAXK_TRACE_SCOPE_NAMED(batch_span, "serve.batch");
        if (bi == kWarmupBatches)
            alloc_base = AllocProbe::totalAllocCount();
        const RequestBatch &batch = batchesWs_[bi];

        seedsWs_.clear();
        for (const std::uint32_t idx : batch.requests)
            seedsWs_.push_back(reqs[idx].vertex);
        std::sort(seedsWs_.begin(), seedsWs_.end());
        seedsWs_.erase(std::unique(seedsWs_.begin(), seedsWs_.end()),
                       seedsWs_.end());

        BatchServeStats bs;
        bs.requests = static_cast<std::uint32_t>(batch.requests.size());
        bs.seeds = static_cast<std::uint32_t>(seedsWs_.size());

        // Plan the batch and meter the plan-derived work; called a
        // second time (allow_stale) when the policy degrades the batch.
        auto planBatch = [&](bool allow_stale) {
            const CacheStats pre =
                cache_ ? cache_->stats() : CacheStats{};
            buildPlan(seedsWs_, allow_stale);
            bs.cacheHits = bs.cacheMisses = 0;
            bs.nodesRecomputed = bs.nodesInjected = 0;
            bs.edgesAggregated = bs.cacheBytesInjected = 0;
            bs.staleRowsInjected = 0;
            if (cache_) {
                bs.cacheHits = cache_->stats().hits - pre.hits;
                bs.cacheMisses = cache_->stats().misses - pre.misses;
                bs.staleRowsInjected =
                    cache_->stats().staleServed - pre.staleServed;
            }
            for (std::uint32_t l = 0; l < numLayers_; ++l) {
                const LayerPlan &lp = plan_[l];
                bs.nodesRecomputed += lp.computed.size();
                bs.nodesInjected += lp.inject.size();
                for (const NodeId v : lp.target)
                    bs.edgesAggregated += sampledDegree(v);
                if (cache_ && l + 1 < numLayers_)
                    bs.cacheBytesInjected +=
                        static_cast<std::uint64_t>(lp.inject.size()) *
                        cache_->rowBytes(l);
            }
            bs.featureBytesGathered =
                static_cast<std::uint64_t>(featureRows_.size()) *
                features_.cols() * sizeof(Float);
        };
        planBatch(false);

        const double start =
            queue_model
                ? std::max(batch.dispatchSimSeconds, server_free)
                : batch.dispatchSimSeconds;
        std::uint8_t outcome = ServeReport::kOutcomeFresh;
        if (queue_model) {
            double earliest = reqs[batch.requests.front()].arrivalSimSeconds;
            for (const std::uint32_t idx : batch.requests)
                earliest =
                    std::min(earliest, reqs[idx].arrivalSimSeconds);
            double worst = start + batchSimSeconds(bs) - earliest;
            if (worst > budget && cfg_.staleServeEnabled && cache_) {
                planBatch(true);
                worst = start + batchSimSeconds(bs) - earliest;
                if (bs.staleRowsInjected > 0)
                    outcome = ServeReport::kOutcomeStale;
            }
            if (worst > budget && cfg_.shedOnOverload) {
                // Shed before the forward: zeroed logits, no service
                // time charged, no cache mutation beyond the planning
                // lookups (admissions only happen during execution, so
                // later batches' logits are unaffected).
                bs.shed = true;
                bs.serviceSimSeconds = 0.0;
                bs.nodesRecomputed = bs.nodesInjected = 0;
                bs.featureBytesGathered = bs.cacheBytesInjected = 0;
                bs.edgesAggregated = 0;
                bs.staleRowsInjected = 0;
                const std::size_t out_dim = model_.config().outDim;
                for (const std::uint32_t idx : batch.requests) {
                    Float *dst = rep.logits.row(idx);
                    std::fill(dst, dst + out_dim, 0.0f);
                    rep.requestBatch[idx] =
                        static_cast<std::uint32_t>(bi);
                    rep.requestOutcome[idx] = ServeReport::kOutcomeShed;
                }
                rep.sheddedRequests += batch.requests.size();
                rep.cacheHits += bs.cacheHits;
                rep.cacheMisses += bs.cacheMisses;
                rep.batchStats.push_back(bs);
                if (telemetry::armed()) {
                    telemetry::counterAdd("serve.requests",
                                          batch.requests.size());
                    telemetry::counterAdd("serve.requests.shed",
                                          batch.requests.size());
                    telemetry::counterAdd("serve.cache.hits",
                                          bs.cacheHits);
                    telemetry::counterAdd("serve.cache.misses",
                                          bs.cacheMisses);
                }
                continue;
            }
        }

        if (cache_)
            executePlanned(bs);
        else
            executeReference(bs);
        bs.serviceSimSeconds = batchSimSeconds(bs);
        batch_span.setSimSeconds(bs.serviceSimSeconds);
        const double finish = start + bs.serviceSimSeconds;
        if (queue_model)
            server_free = finish;

        if (outcome == ServeReport::kOutcomeStale) {
            rep.staleServedRequests += batch.requests.size();
            ++rep.degradedBatches;
        }
        rep.staleRowsInjected += bs.staleRowsInjected;

        const std::size_t out_dim = model_.config().outDim;
        const bool armed = telemetry::armed();
        for (const std::uint32_t idx : batch.requests) {
            const NodeId r = localOf_[reqs[idx].vertex];
            const Float *src = logitsWs_->row(r);
            Float *dst = rep.logits.row(idx);
            std::copy(src, src + out_dim, dst);
            rep.latencySimSeconds[idx] =
                finish - reqs[idx].arrivalSimSeconds;
            rep.requestOutcome[idx] = outcome;
            rep.requestBatch[idx] = static_cast<std::uint32_t>(bi);
            if (armed) {
                // Latencies are simulated (deterministic), recorded in
                // integer ns so the histogram merge stays exact.
                telemetry::histogramRecord(
                    "serve.latency_ns",
                    static_cast<std::uint64_t>(
                        rep.latencySimSeconds[idx] * 1e9 + 0.5));
            }
        }
        if (armed) {
            telemetry::counterAdd("serve.requests",
                                  batch.requests.size());
            telemetry::counterAdd("serve.batches", 1);
            telemetry::counterAdd("serve.cache.hits", bs.cacheHits);
            telemetry::counterAdd("serve.cache.misses", bs.cacheMisses);
            if (outcome == ServeReport::kOutcomeStale)
                telemetry::counterAdd("serve.requests.stale",
                                      batch.requests.size());
        }

        rep.cacheHits += bs.cacheHits;
        rep.cacheMisses += bs.cacheMisses;
        rep.nodesRecomputed += bs.nodesRecomputed;
        rep.nodesInjected += bs.nodesInjected;
        rep.featureBytesGathered += bs.featureBytesGathered;
        rep.cacheBytesInjected += bs.cacheBytesInjected;
        rep.edgesAggregated += bs.edgesAggregated;
        rep.serviceSimSeconds += bs.serviceSimSeconds;
        rep.batchStats.push_back(bs);
    }

    if (batchesWs_.size() > kWarmupBatches)
        rep.steadyStateAllocCount =
            AllocProbe::totalAllocCount() - alloc_base;
    if (cache_) {
        rep.cacheStores = cache_->stats().stores - cache_base.stores;
        rep.cacheEvictions =
            cache_->stats().evictions - cache_base.evictions;
    }
    if (rep.requests > 0 && rep.sheddedRequests == rep.requests)
        return unexpected(ServeError{
            0,
            "overload policy shed every request (budget " +
                std::to_string(budget) + " sim seconds, " +
                std::to_string(rep.requests) + " requests)",
            ServeError::Kind::Shedded});

    // Latency percentiles over SERVED requests only: shed requests have
    // no latency (their entry stays 0 and would skew the tail downward).
    std::vector<double> sorted;
    sorted.reserve(rep.latencySimSeconds.size());
    for (std::size_t i = 0; i < rep.latencySimSeconds.size(); ++i)
        if (rep.requestOutcome[i] != ServeReport::kOutcomeShed)
            sorted.push_back(rep.latencySimSeconds[i]);
    if (!sorted.empty()) {
        std::sort(sorted.begin(), sorted.end());
        auto pct = [&](double q) {
            const std::size_t nq = sorted.size();
            std::size_t idx = static_cast<std::size_t>(
                std::ceil(q * static_cast<double>(nq)));
            idx = idx == 0 ? 0 : idx - 1;
            return sorted[std::min(idx, nq - 1)];
        };
        rep.p50LatencySimSeconds = pct(0.50);
        rep.p99LatencySimSeconds = pct(0.99);
        rep.maxLatencySimSeconds = sorted.back();
    }
    if (rep.serviceSimSeconds > 0.0)
        rep.requestsPerSimSecond = static_cast<double>(rep.requests) /
                                   rep.serviceSimSeconds;
    rep.hostSeconds = watch.seconds();
    return rep;
}

} // namespace maxk::serve
