/**
 * @file
 * Hot-vertex embedding cache for the serving path (ISSUE 8).
 *
 * FGNN's caching policy adapted to MaxK-GNN: rank vertices by how often
 * pre-sampling visits them, pin the top fraction, and keep their
 * layer-wise historical activations resident so steady-state traffic
 * only recomputes the uncached part of each request's L-hop frontier.
 * What makes this affordable is the paper's CBSR format: a MaxK
 * activation row is k values + k narrow indices instead of dim_origin
 * floats, so a cached layer costs ~k/dim of the dense footprint
 * (k*(4+1) bytes per row for dim <= 256 — the Sec. 4.3 traffic figure).
 *
 * Layout: one CBSR store per cacheable layer (layers 0..L-2; the last
 * layer's output is the logits themselves). Slots [0, P) belong to the
 * pinned set — reserved at construction, valid after first store, never
 * evicted. Slots [P, P+lruSlots) form an optional LRU region admitting
 * non-pinned vertices, with eviction by least-recent touch (lookup hit
 * or store). All storage is allocated up front, so serving steady state
 * performs zero Matrix/CbsrMatrix heap allocations.
 *
 * Correctness stance: the cache stores values that are bitwise equal to
 * what recomputation would produce (ServeSession's per-vertex sampled
 * adjacency is fixed, so layer activations are pure functions of the
 * vertex). Cache contents therefore affect stats and simulated cost,
 * never logits — the property tests/test_serve.cc pins down.
 */

#ifndef MAXK_SERVE_EMBEDDING_CACHE_HH
#define MAXK_SERVE_EMBEDDING_CACHE_HH

#include <cstdint>
#include <vector>

#include "core/cbsr.hh"
#include "tensor/matrix.hh"

namespace maxk::serve
{

/** Hit/miss/eviction accounting (compared against a naive map oracle
 *  by tests/test_serve.cc). */
struct CacheStats
{
    std::uint64_t hits = 0;       //!< lookup() found a valid entry
    std::uint64_t misses = 0;     //!< lookup() found none
    std::uint64_t stores = 0;     //!< admit() granted a slot
    std::uint64_t evictions = 0;  //!< LRU entry displaced by admit()
    std::uint64_t rejected = 0;   //!< admit() declined (no LRU region)
    std::uint64_t staleServed = 0; //!< stale entry served (degraded mode)
    std::uint64_t refreshed = 0;   //!< admit() reused a stale entry's slot
};

/** Per-layer embedding store with pinned + LRU regions. */
class EmbeddingCache
{
  public:
    /** Shape of one cacheable layer's activation rows. */
    struct LayerSpec
    {
        std::uint32_t dimK = 0;      //!< stored values per row
        std::uint32_t dimOrigin = 0; //!< dense row width
        bool cbsr = false;           //!< MaxK activation (real sparsity);
                                     //!< false = dense row stored with
                                     //!< identity indices (dimK == dim)
    };

    /**
     * @param num_nodes global vertex count (addressing arrays)
     * @param specs     one entry per cacheable layer (layer 0..L-2)
     * @param pinned    pinned vertex set (FGNN top-fraction ranking);
     *                  duplicates are a caller bug (checkInvariant)
     * @param lru_slots extra per-layer slots for non-pinned vertices
     */
    EmbeddingCache(NodeId num_nodes, std::vector<LayerSpec> specs,
                   const std::vector<NodeId> &pinned,
                   std::uint32_t lru_slots);

    std::uint32_t numLayers() const
    {
        return static_cast<std::uint32_t>(layers_.size());
    }
    NodeId pinnedCount() const { return pinnedCount_; }
    std::uint32_t lruSlots() const { return lruSlots_; }
    NodeId slotCapacity() const { return pinnedCount_ + lruSlots_; }
    bool pinned(NodeId v) const { return pinnedSlotOf_[v] >= 0; }

    /** Fresh-entry probe without stats or LRU side effects (a stale
     *  entry does not count as cached — it needs allow_stale). */
    bool cached(std::uint32_t layer, NodeId v) const
    {
        const Layer &ly = layers_[layer];
        const std::int64_t slot = ly.slotOf[v];
        return slot >= 0 && !ly.stale[static_cast<std::size_t>(slot)];
    }

    /** Entry present but marked stale (degraded-mode candidate). */
    bool staleCached(std::uint32_t layer, NodeId v) const
    {
        const Layer &ly = layers_[layer];
        const std::int64_t slot = ly.slotOf[v];
        return slot >= 0 && ly.stale[static_cast<std::size_t>(slot)];
    }

    /**
     * Read-path lookup: slot index of (layer, v) or -1. Counts one
     * hit/miss and refreshes the LRU touch stamp on LRU-region hits.
     * A stale entry is a miss unless `allow_stale` (the degraded
     * serving mode), where it is a hit counted in staleServed.
     */
    std::int64_t lookup(std::uint32_t layer, NodeId v,
                        bool allow_stale = false);

    /**
     * Admission after computing (layer, v): returns the slot to store
     * into, or -1 when not admissible (non-pinned vertex with no LRU
     * region). Evicts the least-recently-touched LRU entry when the
     * region is full. Counts stores/evictions/rejected. Re-admitting a
     * vertex whose entry is stale refreshes it in place (same slot,
     * stale bit cleared, counted in refreshed).
     */
    std::int64_t admit(std::uint32_t layer, NodeId v);

    /**
     * Degrade every resident entry to stale (ISSUE 9): after a weight
     * update or failover the cached activations no longer match what
     * recomputation would produce. Stale entries are served only in
     * explicit degraded mode and are refreshed on their next admit.
     */
    void markAllStale();

    /** Copy activation row `src_row` of `src` into `slot`. The source
     *  must match the layer spec (checkInvariant). */
    void storeCbsrRow(std::uint32_t layer, std::int64_t slot,
                      const CbsrMatrix &src, NodeId src_row);

    /** Inject `slot` into row `dst_row` of a CBSR activation (both data
     *  and index segments — bitwise round-trip). */
    void loadCbsrRow(std::uint32_t layer, std::int64_t slot,
                     CbsrMatrix &dst, NodeId dst_row) const;

    /** Dense-row variants (ReLU/identity layers): the row is stored as
     *  k == dim CBSR with identity indices. */
    void storeDenseRow(std::uint32_t layer, std::int64_t slot,
                       const Float *src);
    void loadDenseRow(std::uint32_t layer, std::int64_t slot,
                      Float *dst) const;

    /** Bytes one cached row of `layer` occupies (data + index). */
    Bytes rowBytes(std::uint32_t layer) const;

    /** Total cache storage footprint across layers. */
    Bytes storageBytes() const;

    /** Dense footprint the same entries would need (the k/dim win). */
    Bytes denseEquivalentBytes() const;

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

  private:
    struct Layer
    {
        LayerSpec spec;
        CbsrMatrix store;                  //!< slotCapacity() rows
        std::vector<std::int64_t> slotOf;  //!< vertex -> slot, -1 invalid
        std::vector<NodeId> vertexOf;      //!< slot -> vertex
        std::vector<std::uint64_t> touch;  //!< LRU stamps (LRU region)
        std::vector<std::uint8_t> stale;   //!< per-slot degraded bit
        NodeId lruUsed = 0;
    };

    NodeId numNodes_ = 0;
    NodeId pinnedCount_ = 0;
    std::uint32_t lruSlots_ = 0;
    std::uint64_t clock_ = 0;
    std::vector<std::int64_t> pinnedSlotOf_;  //!< shared across layers
    std::vector<Layer> layers_;
    CacheStats stats_;
};

} // namespace maxk::serve

#endif // MAXK_SERVE_EMBEDDING_CACHE_HH
