/**
 * @file
 * Set-associative LRU cache model with dirty-line write-back accounting.
 * Used for the per-SM L1 instances and the shared L2 of the GPU model.
 */

#ifndef MAXK_GPUSIM_CACHE_HH
#define MAXK_GPUSIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace maxk::gpusim
{

/** Result of one cache probe. */
struct CacheAccessResult
{
    bool hit;              //!< line was present
    bool evictedDirty;     //!< a dirty line was evicted to make room
};

/**
 * Classic set-associative cache with true-LRU replacement at line
 * granularity. Addresses are byte addresses; the caller decides the probe
 * granularity (this model is probed once per line touched).
 */
class CacheModel
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc      ways per set (clamped so at least one set exists)
     * @param line_bytes line size (power of two)
     */
    CacheModel(Bytes size_bytes, std::uint32_t assoc,
               std::uint32_t line_bytes);

    /**
     * Probe (and on miss, fill) the line containing addr.
     *
     * @param allocate when false, a miss does not fill the line —
     *        models the A100's evict-first hint for streaming data.
     */
    CacheAccessResult access(std::uint64_t addr, bool is_write,
                             bool allocate = true);

    /** Drop all contents and zero statistics. */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

  private:
    struct Way
    {
        std::uint64_t tag = kInvalid;
        std::uint64_t stamp = 0;
        bool dirty = false;
    };

    static constexpr std::uint64_t kInvalid = ~0ull;

    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::uint32_t lineShift_;
    std::uint32_t numSets_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::vector<Way> ways_;  //!< numSets_ * assoc_, set-major
};

} // namespace maxk::gpusim

#endif // MAXK_GPUSIM_CACHE_HH
