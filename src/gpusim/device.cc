#include "gpusim/device.hh"

#include <algorithm>
#include <cmath>

namespace maxk::gpusim
{

DeviceConfig
DeviceConfig::a100()
{
    return DeviceConfig{};
}

DeviceConfig
DeviceConfig::scaledForWorkingSet(double ratio) const
{
    DeviceConfig scaled = *this;
    ratio = std::clamp(ratio, 1e-6, 1.0);

    auto scale_bytes = [&](Bytes b, Bytes floor_bytes) {
        const double scaled_b = static_cast<double>(b) * ratio;
        return std::max<Bytes>(static_cast<Bytes>(scaled_b), floor_bytes);
    };

    // Keep at least a handful of lines so the models stay meaningful.
    scaled.l2Bytes = scale_bytes(l2Bytes, Bytes{64} * lineBytes);
    scaled.l1BytesPerSm = scale_bytes(l1BytesPerSm, Bytes{16} * lineBytes);
    scaled.name = name + "-scaled";
    return scaled;
}

} // namespace maxk::gpusim
