#include "gpusim/kernel_stats.hh"

#include <algorithm>
#include <cstdio>

namespace maxk::gpusim
{

double
PhaseStats::seconds(const DeviceConfig &cfg, double efficiency,
                    std::string *bottleneck) const
{
    struct Term
    {
        const char *name;
        double seconds;
    };
    const Term terms[] = {
        {"compute", static_cast<double>(flops) / cfg.flopsPerSec()},
        {"l2", static_cast<double>(l2ReqBytes) / cfg.l2BytesPerSec()},
        {"dram", static_cast<double>(dramReadBytes + dramWriteBytes) /
                     cfg.hbmBytesPerSec()},
        {"shared", static_cast<double>(sharedOps) / cfg.sharedOpsPerSec()},
        {"atomic",
         static_cast<double>(atomicSectors) / cfg.atomicSectorsPerSec()},
    };
    const Term *worst = &terms[0];
    for (const Term &t : terms)
        if (t.seconds > worst->seconds)
            worst = &t;
    if (bottleneck)
        *bottleneck = worst->name;
    const double eff = efficiency > 0.0 ? efficiency : 1.0;
    return worst->seconds / eff;
}

void
PhaseStats::accumulate(const PhaseStats &other)
{
    flops += other.flops;
    reqBytes += other.reqBytes;
    l2ReqBytes += other.l2ReqBytes;
    dramReadBytes += other.dramReadBytes;
    dramWriteBytes += other.dramWriteBytes;
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    sharedOps += other.sharedOps;
    sharedBytes += other.sharedBytes;
    atomicSectors += other.atomicSectors;
}

PhaseStats
KernelStats::aggregate() const
{
    PhaseStats total;
    total.name = "total";
    for (const auto &p : phases)
        total.accumulate(p);
    return total;
}

double
KernelStats::l1HitRate() const
{
    const PhaseStats t = aggregate();
    const std::uint64_t n = t.l1Hits + t.l1Misses;
    return n ? static_cast<double>(t.l1Hits) / n : 0.0;
}

double
KernelStats::l2HitRate() const
{
    const PhaseStats t = aggregate();
    const std::uint64_t n = t.l2Hits + t.l2Misses;
    return n ? static_cast<double>(t.l2Hits) / n : 0.0;
}

double
KernelStats::bandwidthUtilization(const DeviceConfig &cfg) const
{
    if (totalSeconds <= 0.0)
        return 0.0;
    const PhaseStats t = aggregate();
    const double bytes =
        static_cast<double>(t.dramReadBytes + t.dramWriteBytes);
    return bytes / (totalSeconds * cfg.hbmBytesPerSec());
}

void
KernelStats::merge(const KernelStats &other)
{
    for (const auto &p : other.phases)
        phases.push_back(p);
    totalSeconds += other.totalSeconds;
}

std::string
KernelStats::summary(const DeviceConfig &cfg) const
{
    const PhaseStats t = aggregate();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s: %.3f ms, l2req=%.1f MB, dram=%.1f MB, L1 %.1f%%, "
                  "L2 %.1f%%, bw-util %.1f%%, bound=%s",
                  kernel.c_str(), milliseconds(),
                  t.l2ReqBytes / 1e6,
                  (t.dramReadBytes + t.dramWriteBytes) / 1e6,
                  l1HitRate() * 100.0, l2HitRate() * 100.0,
                  bandwidthUtilization(cfg) * 100.0, bottleneck.c_str());
    return buf;
}

} // namespace maxk::gpusim
