/**
 * @file
 * Device configuration for the transaction-level GPU model.
 *
 * Parameters default to the NVIDIA A100-80GB used by the paper (Sec. 5.1).
 * Two derived knobs are calibrated once against the paper's published
 * Reddit profile (Table 2 / Table 4) and then held fixed for every
 * experiment:
 *
 *  - sharedOpsPerCycle: per-SM scalar shared-memory scatter/atomic and
 *    red.global issue throughput. 1.6 ops/cycle * 108 SMs * 1.41 GHz
 *    ~= 244 Gop/s, which reproduces the measured ~15 ms SpGEMM/SSpMM
 *    plateau on Reddit k=32 (both kernels issue nnz*k such ops).
 *  - atomicSectorsPerCycle: whole-GPU coalesced global atomic sector
 *    retirement (~1.4 TB/s); the per-element issue cost above, not the
 *    sector throughput, is what makes the SpGEMM write-back stage the
 *    k-independent low-k saturation floor the paper reports.
 */

#ifndef MAXK_GPUSIM_DEVICE_HH
#define MAXK_GPUSIM_DEVICE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace maxk::gpusim
{

/** GPU hardware parameters consumed by the memory/timing model. */
struct DeviceConfig
{
    std::string name = "A100-80GB-sim";

    std::uint32_t numSms = 108;
    std::uint32_t warpSize = 32;

    Bytes sharedMemPerSm = 164 * 1024;
    Bytes l1BytesPerSm = 128 * 1024;
    std::uint32_t l1Assoc = 4;
    Bytes l2Bytes = 40ull * 1024 * 1024;
    std::uint32_t l2Assoc = 16;
    std::uint32_t lineBytes = 128;
    std::uint32_t sectorBytes = 32;

    double clockGhz = 1.41;
    double hbmGBs = 1555.0;        //!< HBM2e peak bandwidth
    double l2GBs = 4500.0;         //!< aggregate L2 bandwidth
    double peakFp32Tflops = 19.5;
    double peakTf32Tflops = 156.0; //!< tensor cores (PyTorch matmul path)

    double sharedOpsPerCycle = 1.6;      //!< per SM (see file comment)
    double atomicSectorsPerCycle = 32.0; //!< whole GPU (~1.4 TB/s for
                                         //!< coalesced red.global)
    double launchOverheadUs = 3.0;

    /**
     * Number of distinct L1 instances the simulator materialises. Warps
     * are assigned round-robin. Defaults to numSms.
     */
    std::uint32_t modeledSms = 108;

    /** The paper's evaluation platform. */
    static DeviceConfig a100();

    /**
     * Scale the cache capacities for a working set that is `ratio` times
     * the paper's (ratio < 1 for the scaled-down dataset twins). Keeping
     * cache-size : working-set constant preserves the hit-rate regime the
     * paper measured, which is what the speedup shape depends on
     * (DESIGN.md Sec. 1). Bandwidths and clocks are left untouched.
     */
    DeviceConfig scaledForWorkingSet(double ratio) const;

    /** Bytes per second the timing model uses for HBM. */
    double hbmBytesPerSec() const { return hbmGBs * 1e9; }
    double l2BytesPerSec() const { return l2GBs * 1e9; }
    double flopsPerSec() const { return peakFp32Tflops * 1e12; }
    double sharedOpsPerSec() const
    {
        return sharedOpsPerCycle * numSms * clockGhz * 1e9;
    }
    double atomicSectorsPerSec() const
    {
        return atomicSectorsPerCycle * clockGhz * 1e9;
    }
};

} // namespace maxk::gpusim

#endif // MAXK_GPUSIM_DEVICE_HH
