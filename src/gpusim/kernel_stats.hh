/**
 * @file
 * Performance counters and the roofline timing law for simulated kernels.
 *
 * A kernel execution is a sequence of phases separated by grid-wide
 * barriers (e.g. SpGEMM's compute+accumulate stage then its write-back
 * stage, Fig. 6). Each phase is independently bound by one of five
 * resources; phase time is the max over them and kernel time is launch
 * overhead plus the sum of phase times:
 *
 *   t_phase = max( flops        / peakFp32,
 *                  l2ReqBytes   / l2Bandwidth,
 *                  dramBytes    / hbmBandwidth,
 *                  sharedOps    / sharedOpThroughput,
 *                  atomicSectors/ atomicThroughput ) / efficiency
 */

#ifndef MAXK_GPUSIM_KERNEL_STATS_HH
#define MAXK_GPUSIM_KERNEL_STATS_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "gpusim/device.hh"

namespace maxk::gpusim
{

/** Counters for one barrier-delimited kernel phase. */
struct PhaseStats
{
    std::string name;

    std::uint64_t flops = 0;         //!< fp32 operations
    Bytes reqBytes = 0;              //!< warp-requested global bytes
    Bytes l2ReqBytes = 0;            //!< bytes that missed L1 (paper's
                                     //!< "total traffic" metric, Table 2)
    Bytes dramReadBytes = 0;         //!< L2 misses
    Bytes dramWriteBytes = 0;        //!< dirty write-backs + streaming st.
    std::uint64_t l1Hits = 0, l1Misses = 0;
    std::uint64_t l2Hits = 0, l2Misses = 0;
    std::uint64_t sharedOps = 0;     //!< scalar shared-mem accesses
    Bytes sharedBytes = 0;
    std::uint64_t atomicSectors = 0; //!< global atomic 32B transactions

    /** Derived phase latency (seconds); fills bottleneck with the name of
     *  the binding resource. */
    double seconds(const DeviceConfig &cfg, double efficiency,
                   std::string *bottleneck = nullptr) const;

    /** Accumulate counters from another phase (for aggregation). */
    void accumulate(const PhaseStats &other);
};

/** Full result of one simulated kernel launch. */
struct KernelStats
{
    std::string kernel;
    double efficiency = 1.0;      //!< <1 models less tuned kernels (GNNA)
    std::vector<PhaseStats> phases;
    double totalSeconds = 0.0;    //!< filled by KernelContext::finish
    std::string bottleneck;       //!< binding resource of longest phase

    /** Sum of counters over phases. */
    PhaseStats aggregate() const;

    double l1HitRate() const;
    double l2HitRate() const;

    /** DRAM bytes moved / (time * peak HBM bandwidth). */
    double bandwidthUtilization(const DeviceConfig &cfg) const;

    /** Milliseconds, convenience. */
    double milliseconds() const { return totalSeconds * 1e3; }

    /** Merge another kernel's stats into this one (epoch accounting). */
    void merge(const KernelStats &other);

    /** Render a short profile line for logs/benches. */
    std::string summary(const DeviceConfig &cfg) const;
};

} // namespace maxk::gpusim

#endif // MAXK_GPUSIM_KERNEL_STATS_HH
