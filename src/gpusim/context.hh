/**
 * @file
 * KernelContext: the warp-level device API simulated kernels program
 * against.
 *
 * A kernel implementation iterates over its warps on the host, performs
 * the real arithmetic on host memory, and reports every global-memory
 * access to the context. The context coalesces accesses into 32B sectors /
 * 128B lines, routes them through the per-SM L1 instance of the issuing
 * warp and the shared L2, and accumulates the PhaseStats counters the
 * roofline law converts into simulated time.
 *
 * Host pointers double as device addresses: arrays are contiguous on the
 * host exactly as they would be in HBM, so line/sector decomposition is
 * faithful.
 */

#ifndef MAXK_GPUSIM_CONTEXT_HH
#define MAXK_GPUSIM_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "gpusim/cache.hh"
#include "gpusim/device.hh"
#include "gpusim/kernel_stats.hh"

namespace maxk::gpusim
{

/**
 * Order-preserving recorder for one worker thread's slice of a kernel's
 * warps. Row-parallel kernels give each chunk of their static partition
 * a private shard; the shard exposes the same device-API surface as
 * KernelContext but only appends (kind, phase, warp, addr, bytes)
 * records — every quantity is structural (graph topology, row
 * addresses), never a computed value, so recording is race-free.
 *
 * KernelContext::merge replays shards in chunk order, which reproduces
 * the exact serial access sequence: cache state, hit counts, and every
 * other counter come out identical to the single-threaded run.
 *
 * Memory cost: one ~32-byte Op per device-API call is buffered until
 * merge (only adjacent sharedOps/flops records fold), so a sharded
 * simulated kernel transiently holds O(nnz) trace — roughly 100 bytes
 * per nonzero for SpGEMM-shaped kernels. Fine for the twin graphs this
 * repo simulates; if OGB-scale graphs ever run with stats on, replay
 * shards pipelined (merge chunk c as soon as chunks < c are merged)
 * instead of holding all of them.
 */
class KernelShard
{
  public:
    void usePhase(const std::string &name);
    void globalRead(std::uint64_t warp, const void *addr, Bytes bytes);
    void globalWrite(std::uint64_t warp, const void *addr, Bytes bytes);
    void globalReadStreaming(std::uint64_t warp, const void *addr,
                             Bytes bytes);
    void globalAtomicAccum(std::uint64_t warp, const void *addr,
                           Bytes bytes);
    void globalReadScattered(std::uint64_t warp, const void *const *addrs,
                             std::size_t n, Bytes elem_bytes);
    void globalAtomicScattered(std::uint64_t warp,
                               const void *const *addrs, std::size_t n,
                               Bytes elem_bytes);
    void sharedOps(std::uint64_t count, Bytes bytes_touched);
    void flops(std::uint64_t count);

  private:
    friend class KernelContext;

    enum class OpKind : std::uint8_t {
        Read,
        Write,
        ReadStreaming,
        AtomicAccum,
        ReadScattered1,    //!< one element of a scattered read
        AtomicScattered1,  //!< one element of a scattered atomic
        SharedOps,         //!< warp field holds the count
        Flops,             //!< warp field holds the count
    };

    struct Op
    {
        std::uint64_t warp;  //!< issuing warp, or count for counters
        std::uint64_t addr;  //!< byte address (unused for counters)
        Bytes bytes;         //!< request size / bytes touched
        OpKind kind;
        std::int16_t phase;  //!< index into phaseNames_, -1 = inherit
    };

    void push(OpKind kind, std::uint64_t warp, std::uint64_t addr,
              Bytes bytes);

    std::vector<Op> ops_;
    std::vector<std::string> phaseNames_;
    std::int16_t phase_ = -1;
};

/**
 * Execution context for one simulated kernel launch.
 *
 * Usage:
 *   KernelContext ctx(cfg, "spgemm_forward");
 *   ctx.beginPhase("compute+accumulate");
 *   ... per-warp work: ctx.globalRead(warp, ptr, bytes); ctx.flops(n); ...
 *   ctx.beginPhase("writeback");
 *   ...
 *   KernelStats stats = ctx.finish();
 */
class KernelContext
{
  public:
    /**
     * @param cfg         device parameters (copied)
     * @param kernel_name name recorded in the stats
     * @param simulate_caches when false, cache probes are skipped and all
     *        requests count as DRAM traffic (fast functional mode used by
     *        unit tests that don't assert on hit rates)
     */
    KernelContext(const DeviceConfig &cfg, std::string kernel_name,
                  bool simulate_caches = true);

    /** Open a new barrier-delimited phase; counters accrue to it. */
    void beginPhase(const std::string &name);

    /**
     * Switch the accounting target to the phase with the given name,
     * creating it if absent. Lets a kernel attribute interleaved work
     * (e.g. per-EG compute and write-back) to stable phase buckets.
     */
    void usePhase(const std::string &name);

    /**
     * Coalesced global read of [addr, addr+bytes) issued by `warp`.
     * Sector-rounded; probes L1(warp's SM) then L2.
     */
    void globalRead(std::uint64_t warp, const void *addr, Bytes bytes);

    /** Coalesced streaming global write (write-through, no L1 allocate). */
    void globalWrite(std::uint64_t warp, const void *addr, Bytes bytes);

    /**
     * Coalesced global read with the evict-first streaming hint: the
     * data bypasses L1 and does not allocate in L2 on a miss. Used for
     * single-pass CSR metadata so it cannot evict reusable rows.
     */
    void globalReadStreaming(std::uint64_t warp, const void *addr,
                             Bytes bytes);

    /**
     * Coalesced global atomic read-modify-write over [addr, addr+bytes):
     * executes at the L2; counts atomic sectors and RMW traffic.
     */
    void globalAtomicAccum(std::uint64_t warp, const void *addr,
                           Bytes bytes);

    /**
     * Uncoalesced element accesses: each of the n elements costs a full
     * sector transaction regardless of elem_bytes (the paper's "irregular
     * global memory access" penalty the SSpMM prefetch avoids).
     */
    void globalReadScattered(std::uint64_t warp, const void *const *addrs,
                             std::size_t n, Bytes elem_bytes);
    void globalAtomicScattered(std::uint64_t warp,
                               const void *const *addrs, std::size_t n,
                               Bytes elem_bytes);

    /** Scalar shared-memory operations (MACs into Buf_w, index gathers). */
    void sharedOps(std::uint64_t count, Bytes bytes_touched);

    /** fp32 operation count for the compute roofline term. */
    void flops(std::uint64_t count);

    /**
     * Replay one worker's recorded operations into this context, in
     * recording order. Merging the shards of a static row partition in
     * chunk order reproduces the serial access sequence exactly, so all
     * counters (including cache hits) match the single-threaded run.
     */
    void merge(const KernelShard &shard);

    /** Finalise: compute per-phase and total time. */
    KernelStats finish(double efficiency = 1.0);

    const DeviceConfig &config() const { return cfg_; }

    /** SM index a warp maps to (round-robin), for white-box tests. */
    std::uint32_t smOf(std::uint64_t warp) const
    {
        return static_cast<std::uint32_t>(warp % l1_.size());
    }

  private:
    void touchLines(std::uint64_t warp, std::uint64_t addr, Bytes bytes,
                    bool is_write, bool allocate_l1,
                    bool allocate_l2 = true);
    PhaseStats &phase();

    DeviceConfig cfg_;
    std::string kernelName_;
    bool simulateCaches_;
    std::vector<CacheModel> l1_;
    CacheModel l2_;
    std::vector<PhaseStats> phases_;
    std::size_t currentPhase_ = 0;
    bool finished_ = false;
};

/**
 * Run a statically-partitioned kernel loop, sharding the context when
 * more than one chunk exists. `body(device, chunkIndex, range)` is
 * instantiated both with KernelContext& (single chunk: the serial path,
 * zero recording overhead) and with KernelShard& (parallel chunks);
 * shards are merged back in chunk order, so stats are identical either
 * way.
 */
template <class Body>
void
runSharded(KernelContext &ctx, const std::vector<IndexRange> &chunks,
           Body &&body)
{
    if (chunks.empty())
        return;
    if (chunks.size() == 1) {
        body(ctx, 0u, chunks[0]);
        return;
    }
    std::vector<KernelShard> shards(chunks.size());
    runChunks(chunks.size(), [&](std::uint32_t t) {
        body(shards[t], t, chunks[t]);
    });
    for (const KernelShard &s : shards)
        ctx.merge(s);
}

} // namespace maxk::gpusim

#endif // MAXK_GPUSIM_CONTEXT_HH
