#include "gpusim/cache.hh"

#include <algorithm>
#include <bit> // std::has_single_bit / countr_zero / bit_floor (C++20)

#include "common/logging.hh"

namespace maxk::gpusim
{

CacheModel::CacheModel(Bytes size_bytes, std::uint32_t assoc,
                       std::uint32_t line_bytes)
    : assoc_(std::max<std::uint32_t>(assoc, 1)),
      lineBytes_(line_bytes)
{
    checkInvariant(std::has_single_bit(line_bytes),
                   "cache line size must be a power of two");
    lineShift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
    const std::uint64_t lines =
        std::max<std::uint64_t>(size_bytes / line_bytes, assoc_);
    numSets_ = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(lines / assoc_, 1));
    // Round sets down to a power of two so the index is a mask.
    numSets_ = std::bit_floor(numSets_);
    ways_.assign(static_cast<std::size_t>(numSets_) * assoc_, Way{});
}

CacheAccessResult
CacheModel::access(std::uint64_t addr, bool is_write, bool allocate)
{
    const std::uint64_t line = addr >> lineShift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line & (numSets_ - 1));
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    ++tick_;

    Way *lru = base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.tag == line) {
            way.stamp = tick_;
            way.dirty = way.dirty || is_write;
            ++hits_;
            return {true, false};
        }
        if (way.stamp < lru->stamp)
            lru = &way;
    }

    ++misses_;
    if (!allocate)
        return {false, false};
    const bool evicted_dirty = lru->tag != kInvalid && lru->dirty;
    lru->tag = line;
    lru->stamp = tick_;
    lru->dirty = is_write;
    return {false, evicted_dirty};
}

void
CacheModel::reset()
{
    std::fill(ways_.begin(), ways_.end(), Way{});
    tick_ = hits_ = misses_ = 0;
}

} // namespace maxk::gpusim
