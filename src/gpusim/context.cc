#include "gpusim/context.hh"

#include <algorithm>

#include "common/logging.hh"

namespace maxk::gpusim
{

namespace
{
/** Round byte count up to whole sectors. */
inline Bytes
sectorRound(Bytes bytes, std::uint32_t sector)
{
    return (bytes + sector - 1) / sector * sector;
}
} // namespace

void
KernelShard::usePhase(const std::string &name)
{
    for (std::size_t i = 0; i < phaseNames_.size(); ++i) {
        if (phaseNames_[i] == name) {
            phase_ = static_cast<std::int16_t>(i);
            return;
        }
    }
    phaseNames_.push_back(name);
    phase_ = static_cast<std::int16_t>(phaseNames_.size() - 1);
}

void
KernelShard::push(OpKind kind, std::uint64_t warp, std::uint64_t addr,
                  Bytes bytes)
{
    // Pure counter ops are order-independent, so adjacent ones of the
    // same kind and phase fold into a single record.
    if ((kind == OpKind::SharedOps || kind == OpKind::Flops) &&
        !ops_.empty()) {
        Op &last = ops_.back();
        if (last.kind == kind && last.phase == phase_) {
            last.warp += warp;
            last.bytes += bytes;
            return;
        }
    }
    ops_.push_back(Op{warp, addr, bytes, kind, phase_});
}

void
KernelShard::globalRead(std::uint64_t warp, const void *addr, Bytes bytes)
{
    push(OpKind::Read, warp, reinterpret_cast<std::uint64_t>(addr), bytes);
}

void
KernelShard::globalWrite(std::uint64_t warp, const void *addr, Bytes bytes)
{
    push(OpKind::Write, warp, reinterpret_cast<std::uint64_t>(addr),
         bytes);
}

void
KernelShard::globalReadStreaming(std::uint64_t warp, const void *addr,
                                 Bytes bytes)
{
    push(OpKind::ReadStreaming, warp,
         reinterpret_cast<std::uint64_t>(addr), bytes);
}

void
KernelShard::globalAtomicAccum(std::uint64_t warp, const void *addr,
                               Bytes bytes)
{
    push(OpKind::AtomicAccum, warp, reinterpret_cast<std::uint64_t>(addr),
         bytes);
}

void
KernelShard::globalReadScattered(std::uint64_t warp,
                                 const void *const *addrs, std::size_t n,
                                 Bytes elem_bytes)
{
    for (std::size_t i = 0; i < n; ++i)
        push(OpKind::ReadScattered1, warp,
             reinterpret_cast<std::uint64_t>(addrs[i]), elem_bytes);
}

void
KernelShard::globalAtomicScattered(std::uint64_t warp,
                                   const void *const *addrs,
                                   std::size_t n, Bytes elem_bytes)
{
    for (std::size_t i = 0; i < n; ++i)
        push(OpKind::AtomicScattered1, warp,
             reinterpret_cast<std::uint64_t>(addrs[i]), elem_bytes);
}

void
KernelShard::sharedOps(std::uint64_t count, Bytes bytes_touched)
{
    push(OpKind::SharedOps, count, 0, bytes_touched);
}

void
KernelShard::flops(std::uint64_t count)
{
    push(OpKind::Flops, count, 0, 0);
}

KernelContext::KernelContext(const DeviceConfig &cfg,
                             std::string kernel_name, bool simulate_caches)
    : cfg_(cfg),
      kernelName_(std::move(kernel_name)),
      simulateCaches_(simulate_caches),
      l2_(cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes)
{
    const std::uint32_t sms = std::max<std::uint32_t>(cfg.modeledSms, 1);
    l1_.reserve(sms);
    for (std::uint32_t s = 0; s < sms; ++s)
        l1_.emplace_back(cfg.l1BytesPerSm, cfg.l1Assoc, cfg.lineBytes);
    beginPhase("main");
}

void
KernelContext::beginPhase(const std::string &name)
{
    // Replace the implicit empty "main" phase if nothing accrued yet.
    if (phases_.size() == 1 && phases_.back().name == "main") {
        const PhaseStats &p = phases_.back();
        if (p.reqBytes == 0 && p.flops == 0 && p.sharedOps == 0 &&
            p.atomicSectors == 0) {
            phases_.back().name = name;
            currentPhase_ = 0;
            return;
        }
    }
    PhaseStats p;
    p.name = name;
    phases_.push_back(std::move(p));
    currentPhase_ = phases_.size() - 1;
}

void
KernelContext::usePhase(const std::string &name)
{
    for (std::size_t i = 0; i < phases_.size(); ++i) {
        if (phases_[i].name == name) {
            currentPhase_ = i;
            return;
        }
    }
    beginPhase(name);
    currentPhase_ = phases_.size() - 1;
}

PhaseStats &
KernelContext::phase()
{
    return phases_[currentPhase_];
}

void
KernelContext::touchLines(std::uint64_t warp, std::uint64_t addr,
                          Bytes bytes, bool is_write, bool allocate_l1,
                          bool allocate_l2)
{
    PhaseStats &p = phase();
    const Bytes req = sectorRound(bytes, cfg_.sectorBytes);
    p.reqBytes += req;

    if (!simulateCaches_) {
        p.l2ReqBytes += req;
        if (is_write)
            p.dramWriteBytes += req;
        else
            p.dramReadBytes += req;
        return;
    }

    CacheModel &l1 = l1_[warp % l1_.size()];
    const std::uint64_t first_line = addr / cfg_.lineBytes;
    const std::uint64_t last_line = (addr + bytes - 1) / cfg_.lineBytes;
    for (std::uint64_t line = first_line; line <= last_line; ++line) {
        const std::uint64_t line_addr = line * cfg_.lineBytes;
        // Bytes of this request inside this line, sector-rounded.
        const std::uint64_t lo = std::max<std::uint64_t>(addr, line_addr);
        const std::uint64_t hi = std::min<std::uint64_t>(
            addr + bytes, line_addr + cfg_.lineBytes);
        const Bytes span = sectorRound(hi - lo, cfg_.sectorBytes);

        bool l1_hit = false;
        if (allocate_l1 && !is_write) {
            const auto r1 = l1.access(line_addr, false);
            l1_hit = r1.hit;
            if (l1_hit)
                ++p.l1Hits;
            else
                ++p.l1Misses;
        } else {
            // Writes and non-allocating reads bypass L1.
            ++p.l1Misses;
        }
        if (l1_hit)
            continue;

        p.l2ReqBytes += span;
        const auto r2 = l2_.access(line_addr, is_write, allocate_l2);
        if (r2.hit) {
            ++p.l2Hits;
        } else {
            ++p.l2Misses;
            p.dramReadBytes += span;
        }
        if (r2.evictedDirty)
            p.dramWriteBytes += cfg_.lineBytes;
    }
}

void
KernelContext::globalRead(std::uint64_t warp, const void *addr, Bytes bytes)
{
    checkInvariant(!finished_, "KernelContext used after finish()");
    if (bytes == 0)
        return;
    touchLines(warp, reinterpret_cast<std::uint64_t>(addr), bytes, false,
               true);
}

void
KernelContext::globalWrite(std::uint64_t warp, const void *addr,
                           Bytes bytes)
{
    checkInvariant(!finished_, "KernelContext used after finish()");
    if (bytes == 0)
        return;
    touchLines(warp, reinterpret_cast<std::uint64_t>(addr), bytes, true,
               false);
}

void
KernelContext::globalReadStreaming(std::uint64_t warp, const void *addr,
                                   Bytes bytes)
{
    checkInvariant(!finished_, "KernelContext used after finish()");
    if (bytes == 0)
        return;
    touchLines(warp, reinterpret_cast<std::uint64_t>(addr), bytes, false,
               false, false);
}

void
KernelContext::globalAtomicAccum(std::uint64_t warp, const void *addr,
                                 Bytes bytes)
{
    checkInvariant(!finished_, "KernelContext used after finish()");
    if (bytes == 0)
        return;
    PhaseStats &p = phase();
    p.atomicSectors += sectorRound(bytes, cfg_.sectorBytes) /
                       cfg_.sectorBytes;
    // Contention (same-address serialization) is charged by the caller
    // via sharedOps — a lone accumulation costs no more than a store,
    // while the k-independent write-back floor of Sec. 5.2 comes from
    // ceil(avg_degree / w) serialized RMW passes per output element.
    // Atomics execute at the L2: the RMW reads then writes each sector.
    touchLines(warp, reinterpret_cast<std::uint64_t>(addr), bytes, true,
               false);
    p.l2ReqBytes += sectorRound(bytes, cfg_.sectorBytes); // RMW read-back
}

void
KernelContext::globalReadScattered(std::uint64_t warp,
                                   const void *const *addrs, std::size_t n,
                                   Bytes elem_bytes)
{
    // Uncoalesced lanes serialize into per-element transactions, each
    // occupying an LSU issue slot as well as a full sector of traffic.
    phase().sharedOps += n;
    for (std::size_t i = 0; i < n; ++i) {
        touchLines(warp, reinterpret_cast<std::uint64_t>(addrs[i]),
                   std::max<Bytes>(elem_bytes, cfg_.sectorBytes), false,
                   true);
    }
}

void
KernelContext::globalAtomicScattered(std::uint64_t warp,
                                     const void *const *addrs,
                                     std::size_t n, Bytes elem_bytes)
{
    PhaseStats &p = phase();
    p.sharedOps += n; // issue cost, as in globalAtomicAccum
    for (std::size_t i = 0; i < n; ++i) {
        p.atomicSectors += 1;
        touchLines(warp, reinterpret_cast<std::uint64_t>(addrs[i]),
                   std::max<Bytes>(elem_bytes, cfg_.sectorBytes), true,
                   false);
        p.l2ReqBytes += cfg_.sectorBytes;
    }
}

void
KernelContext::sharedOps(std::uint64_t count, Bytes bytes_touched)
{
    PhaseStats &p = phase();
    p.sharedOps += count;
    p.sharedBytes += bytes_touched;
}

void
KernelContext::flops(std::uint64_t count)
{
    phase().flops += count;
}

void
KernelContext::merge(const KernelShard &shard)
{
    checkInvariant(!finished_, "KernelContext::merge after finish()");
    std::int16_t applied = -2; // force the first phase switch
    for (const KernelShard::Op &op : shard.ops_) {
        if (op.phase != applied) {
            // -1 records ops issued before the shard's first usePhase:
            // they accrue to whatever phase the context is in, exactly
            // as the serial loop's ops would.
            if (op.phase >= 0)
                usePhase(shard.phaseNames_[op.phase]);
            applied = op.phase;
        }
        const void *addr = reinterpret_cast<const void *>(op.addr);
        switch (op.kind) {
          case KernelShard::OpKind::Read:
            globalRead(op.warp, addr, op.bytes);
            break;
          case KernelShard::OpKind::Write:
            globalWrite(op.warp, addr, op.bytes);
            break;
          case KernelShard::OpKind::ReadStreaming:
            globalReadStreaming(op.warp, addr, op.bytes);
            break;
          case KernelShard::OpKind::AtomicAccum:
            globalAtomicAccum(op.warp, addr, op.bytes);
            break;
          case KernelShard::OpKind::ReadScattered1:
            globalReadScattered(op.warp, &addr, 1, op.bytes);
            break;
          case KernelShard::OpKind::AtomicScattered1:
            globalAtomicScattered(op.warp, &addr, 1, op.bytes);
            break;
          case KernelShard::OpKind::SharedOps:
            sharedOps(op.warp, op.bytes);
            break;
          case KernelShard::OpKind::Flops:
            flops(op.warp);
            break;
        }
    }
}

KernelStats
KernelContext::finish(double efficiency)
{
    checkInvariant(!finished_, "KernelContext::finish called twice");
    finished_ = true;

    KernelStats stats;
    stats.kernel = kernelName_;
    stats.efficiency = efficiency;
    stats.phases = phases_;

    // Thread blocks overlap their barrier-delimited stages across the
    // grid, so steady-state kernel latency is bound by aggregate resource
    // demand, not by the sum of per-phase latencies.
    const PhaseStats total = stats.aggregate();
    stats.totalSeconds = cfg_.launchOverheadUs * 1e-6 +
                         total.seconds(cfg_, efficiency,
                                       &stats.bottleneck);
    return stats;
}

} // namespace maxk::gpusim
