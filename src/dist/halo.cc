#include "dist/halo.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.hh"

namespace maxk::dist
{

std::uint64_t
HaloPlan::totalReplicas() const
{
    std::uint64_t total = 0;
    for (const HaloShard &s : shards)
        total += s.haloGlobal.size();
    return total;
}

HaloPlan
HaloPlan::build(const CsrGraph &g, const Partition &p)
{
    checkInvariant(p.assignment.size() == g.numNodes(),
                   "HaloPlan: partition/graph size mismatch");
    constexpr NodeId kInvalid = ~NodeId{0};
    const NodeId n = g.numNodes();
    const std::uint32_t parts = p.numParts;

    HaloPlan plan;
    plan.numParts = parts;
    plan.shards.resize(parts);

    const auto buckets = p.membersAll();

    // Position of every vertex within its owner's bucket — the row id
    // its owner ships it under.
    std::vector<NodeId> local_index(n, 0);
    for (std::uint32_t r = 0; r < parts; ++r)
        for (NodeId i = 0; i < buckets[r].size(); ++i)
            local_index[buckets[r][i]] = static_cast<NodeId>(i);

    for (std::uint32_t r = 0; r < parts; ++r) {
        HaloShard &s = plan.shards[r];
        s.rank = r;
        s.sendRows.resize(parts);
        s.recvRows.resize(parts);
    }

    // Ext-id of each vertex within the shard currently being compiled;
    // entries touched per shard are reset before the next one.
    std::vector<NodeId> ext_slot(n, kInvalid);

    for (std::uint32_t r = 0; r < parts; ++r) {
        HaloShard &s = plan.shards[r];
        s.localGlobal = buckets[r];
        const NodeId num_local = s.numLocal();

        // Discover the distinct remote vertices any local row reads.
        for (NodeId v : s.localGlobal) {
            for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e) {
                const NodeId u = g.colIdx()[e];
                if (p.assignment[u] != r && ext_slot[u] == kInvalid) {
                    ext_slot[u] = 0; // provisional mark
                    s.haloGlobal.push_back(u);
                }
            }
        }
        std::sort(s.haloGlobal.begin(), s.haloGlobal.end());
        for (NodeId i = 0; i < s.haloGlobal.size(); ++i)
            ext_slot[s.haloGlobal[i]] = num_local + i;

        // Exchange lists: both sides walk the same ascending-global
        // halo sequence, so sendRows[r] on the owner and recvRows[src]
        // here are aligned slot for slot.
        for (NodeId i = 0; i < s.haloGlobal.size(); ++i) {
            const NodeId u = s.haloGlobal[i];
            const std::uint32_t owner = p.assignment[u];
            s.recvRows[owner].push_back(num_local + i);
            plan.shards[owner].sendRows[r].push_back(local_index[u]);
        }

        // Extended subgraph: local rows with remapped columns (sorted —
        // locals keep their relative global order, halos follow), halo
        // rows empty.
        const NodeId num_ext = s.numExt();
        std::vector<EdgeId> row_ptr{0};
        std::vector<NodeId> col_idx;
        std::vector<Float> values;
        row_ptr.reserve(num_ext + 1);
        std::vector<std::pair<NodeId, Float>> row;
        for (NodeId v : s.localGlobal) {
            row.clear();
            for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e) {
                const NodeId u = g.colIdx()[e];
                const NodeId mapped = p.assignment[u] == r
                                          ? local_index[u]
                                          : ext_slot[u];
                row.emplace_back(mapped, g.values()[e]);
            }
            std::sort(row.begin(), row.end());
            for (const auto &[c, w] : row) {
                col_idx.push_back(c);
                values.push_back(w);
            }
            row_ptr.push_back(static_cast<EdgeId>(col_idx.size()));
        }
        for (NodeId i = 0; i < s.haloGlobal.size(); ++i)
            row_ptr.push_back(static_cast<EdgeId>(col_idx.size()));
        s.extGraph = CsrGraph::fromCsr(num_ext, std::move(row_ptr),
                                       std::move(col_idx),
                                       std::move(values));
        // Pre-build the stable transpose on the compiling thread; the
        // scatter-shaped backward paths reuse it from rank threads.
        s.extGraph.transposeCached();

        for (NodeId u : s.haloGlobal)
            ext_slot[u] = kInvalid;
    }
    return plan;
}

void
HaloExchange::exchangeDense(Communicator &comm, Matrix &m)
{
    const std::uint32_t parts = comm.worldSize();
    const std::size_t row_bytes = m.cols() * sizeof(Float);

    sendBuf_.resize(parts);
    for (std::uint32_t d = 0; d < parts; ++d) {
        const auto &rows = shard_.sendRows[d];
        sendBuf_[d].resize(rows.size() * row_bytes);
        std::uint8_t *out = sendBuf_[d].data();
        for (NodeId local : rows) {
            std::memcpy(out, m.row(local), row_bytes);
            out += row_bytes;
        }
    }
    comm.allToAllv(sendBuf_, recvBuf_, CommChannel::Halo);
    for (std::uint32_t src = 0; src < parts; ++src) {
        const auto &slots = shard_.recvRows[src];
        checkInvariant(recvBuf_[src].size() == slots.size() * row_bytes,
                       "exchangeDense: payload size mismatch");
        const std::uint8_t *in = recvBuf_[src].data();
        for (NodeId slot : slots) {
            std::memcpy(m.row(slot), in, row_bytes);
            in += row_bytes;
        }
    }
}

void
HaloExchange::reverseDense(Communicator &comm, Matrix &m)
{
    const std::uint32_t parts = comm.worldSize();
    const std::size_t dim = m.cols();
    const std::size_t row_bytes = dim * sizeof(Float);

    sendBuf_.resize(parts);
    for (std::uint32_t dst = 0; dst < parts; ++dst) {
        const auto &slots = shard_.recvRows[dst];
        sendBuf_[dst].resize(slots.size() * row_bytes);
        std::uint8_t *out = sendBuf_[dst].data();
        for (NodeId slot : slots) {
            std::memcpy(out, m.row(slot), row_bytes);
            out += row_bytes;
        }
    }
    comm.allToAllv(sendBuf_, recvBuf_, CommChannel::Halo);
    // Fold received partials into the local boundary rows in rank
    // order — fixed, so the result is deterministic.
    for (std::uint32_t src = 0; src < parts; ++src) {
        const auto &rows = shard_.sendRows[src];
        checkInvariant(recvBuf_[src].size() == rows.size() * row_bytes,
                       "reverseDense: payload size mismatch");
        const Float *in =
            reinterpret_cast<const Float *>(recvBuf_[src].data());
        for (NodeId local : rows) {
            Float *dst_row = m.row(local);
            for (std::size_t c = 0; c < dim; ++c)
                dst_row[c] += in[c];
            in += dim;
        }
    }
    // Halo rows have been handed back; zero them so the rest of the
    // backward pass sees no remote-owned gradient.
    for (NodeId slot = shard_.numLocal(); slot < shard_.numExt(); ++slot)
        std::fill(m.row(slot), m.row(slot) + dim, 0.0f);
}

namespace
{

/**
 * CBSR wire format of one lane: all data segments first (keeps the fp32
 * block aligned for the deserialising add), then all index segments —
 * (4 + indexBytes) * k bytes per row, the paper's Sec. 1 figure.
 */
std::size_t
cbsrLaneBytes(const CbsrMatrix &m, std::size_t rows)
{
    return rows * m.dimK() * (sizeof(Float) + m.indexBytes());
}

void
packCbsrRows(const CbsrMatrix &m, const std::vector<NodeId> &rows,
             std::vector<std::uint8_t> &buf)
{
    const std::uint32_t k = m.dimK();
    const std::uint32_t ib = m.indexBytes();
    buf.resize(cbsrLaneBytes(m, rows.size()));
    std::uint8_t *data_out = buf.data();
    std::uint8_t *idx_out = buf.data() + rows.size() * k * sizeof(Float);
    for (NodeId row : rows) {
        std::memcpy(data_out, m.dataRow(row), k * sizeof(Float));
        data_out += k * sizeof(Float);
        if (ib == 1) {
            for (std::uint32_t kk = 0; kk < k; ++kk)
                idx_out[kk] =
                    static_cast<std::uint8_t>(m.indexAt(row, kk));
        } else {
            for (std::uint32_t kk = 0; kk < k; ++kk) {
                const std::uint16_t v =
                    static_cast<std::uint16_t>(m.indexAt(row, kk));
                std::memcpy(idx_out + kk * 2, &v, 2);
            }
        }
        idx_out += k * ib;
    }
}

std::uint32_t
unpackIndex(const std::uint8_t *idx_in, std::uint32_t ib,
            std::uint32_t kk)
{
    if (ib == 1)
        return idx_in[kk];
    std::uint16_t v;
    std::memcpy(&v, idx_in + kk * 2, 2);
    return v;
}

} // namespace

void
HaloExchange::exchangeCbsr(Communicator &comm, CbsrMatrix &m)
{
    const std::uint32_t parts = comm.worldSize();
    const std::uint32_t k = m.dimK();
    const std::uint32_t ib = m.indexBytes();

    sendBuf_.resize(parts);
    for (std::uint32_t d = 0; d < parts; ++d)
        packCbsrRows(m, shard_.sendRows[d], sendBuf_[d]);
    comm.allToAllv(sendBuf_, recvBuf_, CommChannel::Halo);
    for (std::uint32_t src = 0; src < parts; ++src) {
        const auto &slots = shard_.recvRows[src];
        checkInvariant(recvBuf_[src].size() ==
                           cbsrLaneBytes(m, slots.size()),
                       "exchangeCbsr: payload size mismatch");
        const std::uint8_t *data_in = recvBuf_[src].data();
        const std::uint8_t *idx_in =
            recvBuf_[src].data() + slots.size() * k * sizeof(Float);
        for (NodeId slot : slots) {
            std::memcpy(m.dataRow(slot), data_in, k * sizeof(Float));
            data_in += k * sizeof(Float);
            for (std::uint32_t kk = 0; kk < k; ++kk)
                m.setIndex(slot, kk, unpackIndex(idx_in, ib, kk));
            idx_in += k * ib;
        }
    }
}

void
HaloExchange::reverseCbsr(Communicator &comm, CbsrMatrix &m)
{
    const std::uint32_t parts = comm.worldSize();
    const std::uint32_t k = m.dimK();
    const std::uint32_t ib = m.indexBytes();

    sendBuf_.resize(parts);
    for (std::uint32_t dst = 0; dst < parts; ++dst)
        packCbsrRows(m, shard_.recvRows[dst], sendBuf_[dst]);
    comm.allToAllv(sendBuf_, recvBuf_, CommChannel::Halo);
    for (std::uint32_t src = 0; src < parts; ++src) {
        const auto &rows = shard_.sendRows[src];
        checkInvariant(recvBuf_[src].size() ==
                           cbsrLaneBytes(m, rows.size()),
                       "reverseCbsr: payload size mismatch");
        const std::uint8_t *data_in = recvBuf_[src].data();
        const std::uint8_t *idx_in =
            recvBuf_[src].data() + rows.size() * k * sizeof(Float);
        for (NodeId local : rows) {
            const Float *partial =
                reinterpret_cast<const Float *>(data_in);
            Float *dst_row = m.dataRow(local);
            for (std::uint32_t kk = 0; kk < k; ++kk) {
                // The gradient pattern is the forward pattern on both
                // sides; the shipped indices are the wire format's
                // self-description.
                checkInvariant(unpackIndex(idx_in, ib, kk) ==
                                   m.indexAt(local, kk),
                               "reverseCbsr: pattern mismatch");
                dst_row[kk] += partial[kk];
            }
            data_in += k * sizeof(Float);
            idx_in += k * ib;
        }
    }
    for (NodeId slot = shard_.numLocal(); slot < shard_.numExt();
         ++slot) {
        Float *dst_row = m.dataRow(slot);
        std::fill(dst_row, dst_row + k, 0.0f);
    }
}

} // namespace maxk::dist
