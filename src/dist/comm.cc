#include "dist/comm.hh"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/trace.hh"

namespace maxk::dist
{

namespace
{

/** Upper bound on consecutive transient-fault retries of one hook. */
constexpr std::uint32_t kCommRetryLimit = 4;

const char *
channelName(CommChannel channel)
{
    switch (channel) {
      case CommChannel::Halo:   return "halo";
      case CommChannel::Reduce: return "reduce";
      case CommChannel::Gather: return "gather";
    }
    return "?";
}

/** Per-channel wire-byte counters (deterministic: the payload sizes
 *  are a pure function of the partition, not of scheduling). */
void
noteBytes(CommChannel channel, std::uint64_t sent, std::uint64_t received)
{
    if (!telemetry::armed())
        return;
    const std::string ch = channelName(channel);
    telemetry::counterAdd("comm.sent_bytes." + ch, sent);
    telemetry::counterAdd("comm.recv_bytes." + ch, received);
}

} // namespace

/**
 * Mailbox state shared by the ranks of one world.
 *
 * The protocol is a phase-counter barrier: each collective is two sync
 * points. Between them every peer's slot pointer is published and the
 * pointed-to buffers are immutable, so readers may copy without locks —
 * the mutex hand-off at the barriers provides the happens-before edges
 * (TSan-clean by construction, not by annotation).
 */
struct CommShared
{
    std::uint32_t ranks = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t phase = 0;    //!< bumped when the last rank arrives
    std::uint32_t arrived = 0;  //!< ranks waiting at the current phase
    bool aborted = false;
    std::vector<const void *> slots;  //!< one published pointer per rank
    FaultInjector *faults = nullptr;  //!< hook-site injector (not owned)
    double phaseTimeoutSeconds = 0.0; //!< 0 = wait forever
};

std::uint32_t
Communicator::worldSize() const
{
    return shared_->ranks;
}

void
Communicator::sync()
{
    std::unique_lock<std::mutex> lk(shared_->mu);
    if (shared_->aborted)
        throw CommAborted();
    const std::uint64_t my_phase = shared_->phase;
    if (++shared_->arrived == shared_->ranks) {
        shared_->arrived = 0;
        ++shared_->phase;
        shared_->cv.notify_all();
        return;
    }
    const auto arrived = [&] {
        return shared_->phase != my_phase || shared_->aborted;
    };
    if (shared_->phaseTimeoutSeconds > 0.0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    shared_->phaseTimeoutSeconds));
        if (!shared_->cv.wait_until(lk, deadline, arrived)) {
            // Watchdog fired: this rank is the root cause; peers (and
            // any rank that never arrives) wake with CommAborted.
            shared_->aborted = true;
            shared_->cv.notify_all();
            throw CommTimeout(
                "rank " + std::to_string(rank_) +
                ": collective phase exceeded its deadline of " +
                std::to_string(shared_->phaseTimeoutSeconds) + " s");
        }
    } else {
        shared_->cv.wait(lk, arrived);
    }
    if (shared_->aborted)
        throw CommAborted();
}

void
Communicator::faultPoint(const char *site)
{
    FaultInjector *inj = shared_->faults;
    if (!inj)
        return;
    for (std::uint32_t attempt = 0;; ++attempt) {
        const FaultSpec *s = inj->fire(site, rank_);
        if (!s)
            return; // no fault at this visit (or the retry cleared it)
        if (s->kind == FaultKind::CommTimeout && s->transient &&
            attempt < kCommRetryLimit) {
            ++retries_;
            if (telemetry::armed())
                telemetry::counterAdd("comm.retries.transient", 1);
            logMessage(LogLevel::Warn,
                       "comm: rank " + std::to_string(rank_) +
                           " retrying transient timeout at " + site);
            continue;
        }
        if (s->kind == FaultKind::CommTimeout) {
            std::lock_guard<std::mutex> lk(shared_->mu);
            shared_->aborted = true;
            shared_->cv.notify_all();
            throw CommTimeout("rank " + std::to_string(rank_) +
                              ": injected collective timeout at " +
                              site + " occurrence " +
                              std::to_string(s->occurrence));
        }
        throw InjectedFault(*s);
    }
}

void
Communicator::publish(const void *ptr)
{
    {
        std::lock_guard<std::mutex> lk(shared_->mu);
        shared_->slots[rank_] = ptr;
    }
    sync();
}

void
Communicator::barrier()
{
    MAXK_TRACE_SCOPE("comm.barrier");
    faultPoint("comm.barrier");
    sync();
}

void
Communicator::allToAllv(
    const std::vector<std::vector<std::uint8_t>> &send,
    std::vector<std::vector<std::uint8_t>> &recv, CommChannel channel)
{
    const std::uint32_t n = shared_->ranks;
    checkInvariant(send.size() == n,
                   "allToAllv: send lane count != world size");
    const std::uint32_t ch = static_cast<std::uint32_t>(channel);

    MAXK_TRACE_SCOPE("comm.allToAllv", channelName(channel));
    faultPoint("comm.allToAllv");
    recv.resize(n);
    publish(&send);
    faultPoint("comm.allToAllv.mid");
    // All lanes published and frozen; copy what is addressed to us.
    // Lane order (and therefore recv content) is fixed by rank index,
    // independent of thread scheduling.
    for (std::uint32_t src = 0; src < n; ++src) {
        const auto &peer = *static_cast<
            const std::vector<std::vector<std::uint8_t>> *>(
            shared_->slots[src]);
        checkInvariant(peer.size() == n,
                       "allToAllv: peer lane count != world size");
        const std::vector<std::uint8_t> &lane = peer[rank_];
        recv[src].assign(lane.begin(), lane.end());
        if (src != rank_)
            traffic_.received[ch] += lane.size();
    }
    sync(); // every rank done copying; senders may reuse their buffers
    std::uint64_t sent_now = 0;
    for (std::uint32_t dst = 0; dst < n; ++dst)
        if (dst != rank_)
            sent_now += send[dst].size();
    traffic_.sent[ch] += sent_now;
    std::uint64_t recv_now = 0;
    for (std::uint32_t src = 0; src < n; ++src)
        if (src != rank_)
            recv_now += recv[src].size();
    noteBytes(channel, sent_now, recv_now);
}

template <class T>
void
Communicator::reduceImpl(T *data, std::size_t count,
                         std::vector<T> &scratch, CommChannel channel)
{
    const std::uint32_t n = shared_->ranks;
    const std::uint32_t ch = static_cast<std::uint32_t>(channel);

    MAXK_TRACE_SCOPE("comm.allReduce", channelName(channel));
    faultPoint("comm.allReduceSum");
    publish(data);
    faultPoint("comm.allReduceSum.mid");
    scratch.resize(count);
    // Fixed-order fold: rank 0 first, then 1, ... — every rank computes
    // the identical sum, so the replicas stay bitwise in sync.
    const T *first = static_cast<const T *>(shared_->slots[0]);
    std::memcpy(scratch.data(), first, count * sizeof(T));
    for (std::uint32_t src = 1; src < n; ++src) {
        const T *p = static_cast<const T *>(shared_->slots[src]);
        for (std::size_t i = 0; i < count; ++i)
            scratch[i] += p[i];
    }
    sync(); // every rank done reading; buffers may be overwritten
    std::memcpy(data, scratch.data(), count * sizeof(T));

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count) * sizeof(T) * (n - 1);
    traffic_.sent[ch] += bytes;
    traffic_.received[ch] += bytes;
    noteBytes(channel, bytes, bytes);
}

void
Communicator::allReduceSum(Float *data, std::size_t count,
                           CommChannel channel)
{
    reduceImpl(data, count, scratchF_, channel);
}

void
Communicator::allReduceSum(double *data, std::size_t count,
                           CommChannel channel)
{
    reduceImpl(data, count, scratchD_, channel);
}

CommWorld::CommWorld(std::uint32_t ranks)
    : shared_(std::make_unique<CommShared>())
{
    checkInvariant(ranks >= 1, "CommWorld: need >= 1 rank");
    shared_->ranks = ranks;
    shared_->slots.assign(ranks, nullptr);
    comms_.reserve(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r)
        comms_.push_back(Communicator(shared_.get(), r));
}

CommWorld::~CommWorld() = default;

std::uint32_t
CommWorld::ranks() const
{
    return shared_->ranks;
}

void
CommWorld::run(const std::function<void(Communicator &)> &fn)
{
    const std::uint32_t n = shared_->ranks;
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::uint32_t r = 0; r < n; ++r) {
        threads.emplace_back([&, r] {
            try {
                fn(comms_[r]);
            } catch (...) {
                errors[r] = std::current_exception();
                std::lock_guard<std::mutex> lk(shared_->mu);
                shared_->aborted = true;
                shared_->cv.notify_all();
            }
        });
    }
    for (auto &t : threads)
        t.join();

    // Rethrow the root cause: prefer the first non-CommAborted error
    // (CommAborted in other ranks is a consequence, not the cause).
    std::exception_ptr first;
    for (const std::exception_ptr &e : errors) {
        if (!e)
            continue;
        if (!first)
            first = e;
        try {
            std::rethrow_exception(e);
        } catch (const CommAborted &) {
            // consequence — keep looking for the cause
        } catch (...) {
            first = e;
            break;
        }
    }
    if (first)
        std::rethrow_exception(first);
}

const CommTraffic &
CommWorld::traffic(std::uint32_t rank) const
{
    checkInvariant(rank < comms_.size(), "CommWorld: rank out of range");
    return comms_[rank].traffic();
}

std::uint64_t
CommWorld::totalSentBytes(CommChannel channel) const
{
    std::uint64_t total = 0;
    for (const Communicator &c : comms_)
        total += c.sentBytes(channel);
    return total;
}

void
CommWorld::setFaultInjector(FaultInjector *faults)
{
    shared_->faults = faults;
}

void
CommWorld::setPhaseTimeout(double seconds)
{
    shared_->phaseTimeoutSeconds = seconds;
}

std::uint64_t
CommWorld::totalTransientRetries() const
{
    std::uint64_t total = 0;
    for (const Communicator &c : comms_)
        total += c.transientRetries();
    return total;
}

} // namespace maxk::dist
