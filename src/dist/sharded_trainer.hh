/**
 * @file
 * Rank-parallel full-batch trainer: really runs the partition-parallel
 * deployment that nn/distributed.hh models analytically.
 *
 * One CommWorld thread per rank trains a full model replica on its
 * shard (dist/sharded_model.hh): per-layer halo exchange of boundary
 * activation rows forward, reverse partial-gradient exchange backward,
 * globally-normalised loss so every local gradient row is the exact
 * single-device gradient, and fixed-order weight-gradient allReduce so
 * the replicas stay bitwise in sync. Guarantees (asserted by
 * tests/test_sharded.cc):
 *
 *  - 1 rank: bitwise-identical loss/metric trajectories to nn::Trainer
 *    on the same graph and seeds;
 *  - R ranks: run-to-run deterministic at any MAXK_THREADS, loss within
 *    1e-5 of single-device (fp32 reassociation across shard boundaries
 *    is the only divergence; dropout must be disabled for trajectory
 *    comparison — masks are rank-local);
 *  - steady-state epochs (>= 2) perform zero Matrix/CbsrMatrix heap
 *    allocations across ALL ranks, including the loss path
 *    (AllocProbe-enforced, reported in steadyStateAllocCount);
 *  - measured Halo-channel traffic reconciles exactly with the
 *    corrected profileDistributedEpoch model:
 *    trainHaloBytes == exchangedBytes * epochs.
 */

#ifndef MAXK_DIST_SHARDED_TRAINER_HH
#define MAXK_DIST_SHARDED_TRAINER_HH

#include <cstdint>

#include "dist/halo.hh"
#include "graph/partition.hh"
#include "graph/registry.hh"
#include "nn/trainer.hh"

namespace maxk::dist
{

/** Outcome of a sharded run: the single-device result fields plus the
 *  gathered logits and the measured communication volumes. */
struct ShardedTrainResult
{
    nn::TrainResult train;  //!< loss/metric trajectories (rank-0 view)

    /** Logits of the last evaluation, gathered to global row order. */
    Matrix finalLogits;

    /** Σ over ranks of Halo-channel bytes sent during training
     *  forward+backward passes (reconciles with the analytical model:
     *  == profileDistributedEpoch().exchangedBytes * epochs). */
    std::uint64_t trainHaloBytes = 0;

    /** Halo bytes of the evaluation-only forward passes. */
    std::uint64_t evalHaloBytes = 0;

    /** Reduce-channel bytes (loss + weight-gradient allReduce). */
    std::uint64_t reduceBytes = 0;

    /** Gather-channel bytes (evaluation logits gather). */
    std::uint64_t gatherBytes = 0;

    /** Matrix/CbsrMatrix heap allocations, all ranks, epochs >= 2
     *  (0 once the persistent workspaces are warm). */
    std::uint64_t steadyStateAllocCount = 0;
};

/** Partition-parallel trainer over a compiled HaloPlan. */
class ShardedTrainer
{
  public:
    /**
     * @param cfg  model configuration (replicated on every rank)
     * @param data graph + features + labels + masks (mutated: edge
     *             weights are set for the model's aggregator, exactly
     *             like nn::Trainer — halo rows must aggregate with
     *             global degrees)
     * @param task metric / multi-label configuration
     * @param part rank assignment; part.numParts ranks are spawned
     */
    ShardedTrainer(const nn::ModelConfig &cfg, TrainingData &data,
                   const TrainingTask &task, const Partition &part);

    /** Run the loop; deterministic given cfg.seed (and thread count). */
    ShardedTrainResult run(const nn::TrainConfig &cfg);

    const HaloPlan &plan() const { return plan_; }

  private:
    double evalMetric(const Matrix &logits,
                      const std::vector<std::uint8_t> &mask) const;

    nn::ModelConfig cfg_;
    TrainingData &data_;
    const TrainingTask &task_;
    Partition part_;
    HaloPlan plan_;
    Matrix multiTargets_;      //!< global targets (rank-0 metrics)
    std::size_t trainCount_ = 0;  //!< global training-node count
};

} // namespace maxk::dist

#endif // MAXK_DIST_SHARDED_TRAINER_HH
