/**
 * @file
 * Per-rank GNN model replica over one shard's extended subgraph.
 *
 * ShardedModel drives the GnnLayer phase hooks directly: each layer
 * runs dropout → Linear → nonlinearity on the extended feature matrix,
 * exchanges the boundary activation rows (CBSR rows for MaxK layers —
 * the paper's compounding communication win — dense rows otherwise),
 * then aggregates over the extended subgraph, whose halo rows now hold
 * the owners' exact activations. The backward pass mirrors it: reverse
 * aggregation accumulates partial gradients into the halo rows, the
 * reverse exchange hands them back to their owners (which fold them in
 * rank order), and the remainder of the backward runs locally.
 *
 * At one rank the extended subgraph is the whole graph, both exchanges
 * are empty, and the phase hooks execute exactly GnnModel::forward /
 * backward — bitwise-identical to the single-device Trainer.
 *
 * Known trade-off: the per-node stages (dropout / Linear / MaxK) run
 * over all numExt rows, so the halo rows are computed locally and then
 * overwritten by the exchange. This wastes O(haloRows * inDim *
 * outDim) GEMM work per layer but keeps every stage a whole-matrix op
 * with the exact single-device shapes (the bitwise 1-rank guarantee
 * and the zero-allocation contract fall out for free). Row-limited
 * variants of the Linear/Dropout path would remove it without changing
 * any exchanged byte — tracked in ROADMAP.
 */

#ifndef MAXK_DIST_SHARDED_MODEL_HH
#define MAXK_DIST_SHARDED_MODEL_HH

#include <vector>

#include "dist/comm.hh"
#include "dist/halo.hh"
#include "nn/model.hh"
#include "tensor/matrix.hh"

namespace maxk::dist
{

/** One rank's trainable replica (weights identical across ranks). */
class ShardedModel
{
  public:
    /**
     * Builds the replica; an "auto" kernel variant in `cfg` is resolved
     * once against this rank's extended subgraph and pinned into every
     * layer — partitions differ in degree shape, so ranks legitimately
     * pin different schedules (a per-rank adaptive choice the
     * single-device path cannot express).
     */
    ShardedModel(const nn::ModelConfig &cfg, const HaloShard &shard);

    /**
     * Full forward over the extended features (numExt rows; halo rows
     * of the input are ignored — every layer's halo activations come
     * from the exchange). Returns logits with numExt rows; only the
     * local rows [0, numLocal) are meaningful.
     */
    const Matrix &forward(Communicator &comm, HaloExchange &ex,
                          const Matrix &x_ext, bool training);

    /** Backprop from d(loss)/d(logits) (halo rows must be zero — the
     *  loss only sees local rows). Accumulates parameter grads. */
    void backward(Communicator &comm, HaloExchange &ex,
                  const Matrix &grad_logits);

    /** The underlying replica (parameters, config, layer stack). */
    nn::GnnModel &inner() { return model_; }

  private:
    const HaloShard &shard_;
    nn::GnnModel model_;
    std::vector<Matrix> outs_;  //!< outs_[l] = output of layer l
    Matrix gradCur_;
    Matrix gradPrev_;
};

} // namespace maxk::dist

#endif // MAXK_DIST_SHARDED_MODEL_HH
