#include "dist/sharded_trainer.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "common/trace.hh"
#include "dist/sharded_model.hh"
#include "nn/checkpoint.hh"
#include "nn/loss.hh"
#include "nn/metrics.hh"
#include "nn/optimizer.hh"
#include "tensor/alloc_probe.hh"

namespace maxk::dist
{

ShardedTrainer::ShardedTrainer(const nn::ModelConfig &cfg,
                               TrainingData &data,
                               const TrainingTask &task,
                               const Partition &part)
    : cfg_(cfg), data_(data), task_(task), part_(part)
{
    checkInvariant(part_.assignment.size() == data_.graph.numNodes(),
                   "ShardedTrainer: partition/graph size mismatch");
    checkInvariant(cfg_.outDim == task_.numClasses,
                   "ShardedTrainer: model outDim != task classes");
    // Weights must be set on the GLOBAL graph before the plan copies
    // them into the shard subgraphs: boundary rows aggregate with
    // global degrees, exactly like the single-device Trainer.
    data_.graph.setAggregatorWeights(nn::aggregatorFor(cfg_.kind));
    plan_ = HaloPlan::build(data_.graph, part_);
    if (task_.multiLabel)
        multiTargets_ =
            nn::multiLabelTargets(data_.labels, task_.numClasses);
    for (std::uint8_t m : data_.trainMask)
        trainCount_ += m ? 1 : 0;
}

double
ShardedTrainer::evalMetric(const Matrix &logits,
                           const std::vector<std::uint8_t> &mask) const
{
    switch (task_.metric) {
      case MetricKind::Accuracy:
        return nn::accuracy(logits, data_.labels, mask);
      case MetricKind::MicroF1:
        return nn::microF1(logits, multiTargets_, mask);
      case MetricKind::RocAuc:
        return nn::rocAuc(logits, multiTargets_, mask);
    }
    return 0.0;
}

ShardedTrainResult
ShardedTrainer::run(const nn::TrainConfig &cfg)
{
    const std::uint32_t ranks = part_.numParts;
    const std::uint32_t eval_every =
        std::max<std::uint32_t>(cfg.evalEvery, 1);
    const std::size_t num_classes = task_.numClasses;
    const std::size_t feat_dim = data_.features.cols();

    Stopwatch watch;
    ShardedTrainResult result;

    // Observation only; bitwise-neutral (tests/test_telemetry.cc). The
    // rank threads read the global armed flag set here.
    std::optional<telemetry::ArmGuard> arm;
    if (cfg.telemetry)
        arm.emplace(true);
    result.finalLogits.resize(data_.graph.numNodes(), num_classes);

    std::vector<std::uint64_t> train_halo(ranks, 0), eval_halo(ranks, 0);
    std::uint64_t steady_allocs = 0;

    // Checkpoint/restore (ISSUE 9). The weight-gradient allReduce keeps
    // the replicas bitwise identical, so rank 0's params + Adam state
    // describe every rank; only the dropout streams diverge and are
    // persisted per rank ("rng.rank<r>", gathered below). The image is
    // loaded once on this (main) thread; each rank restores from it
    // inside the world.
    std::optional<formats::CheckpointStore> store;
    formats::Checkpoint ck; // rank-0 write image
    std::optional<formats::Checkpoint> resume_image;
    std::uint32_t start_epoch = 0;
    const std::uint32_t ckpt_every =
        std::max<std::uint32_t>(cfg.checkpointEvery, 1);
    if (!cfg.checkpointDir.empty()) {
        store.emplace(cfg.checkpointDir, "sharded", cfg.checkpointKeep);
        if (!store->epochsOnDisk().empty()) {
            auto loaded = store->loadLatest();
            if (loaded) {
                auto traj = nn::readTrajectories(
                    loaded.value().checkpoint, result.train);
                if (traj) {
                    resume_image = std::move(loaded.value().checkpoint);
                    start_epoch = static_cast<std::uint32_t>(
                                      loaded.value().epoch) +
                                  1;
                    logMessage(LogLevel::Info,
                               "ShardedTrainer: resuming after epoch " +
                                   std::to_string(loaded.value().epoch));
                } else {
                    logMessage(LogLevel::Warn,
                               "ShardedTrainer: checkpoint rejected, "
                               "starting fresh: " +
                                   traj.error().describe());
                    result.train = nn::TrainResult{};
                }
            } else {
                logMessage(LogLevel::Warn,
                           "ShardedTrainer: no usable checkpoint, "
                           "starting fresh: " +
                               loaded.error().describe());
            }
        }
    }
    const std::uint32_t steady_epoch = start_epoch + 2;

    CommWorld world(ranks);
    world.setFaultInjector(cfg.faults);
    world.run([&](Communicator &comm) {
        const std::uint32_t r = comm.rank();
        const HaloShard &shard = plan_.shards[r];
        const NodeId num_local = shard.numLocal();
        const NodeId num_ext = shard.numExt();

        // Shard-local training data: local rows gathered from the
        // global arrays, halo rows zero (masked out everywhere).
        Matrix features(num_ext, feat_dim);
        std::vector<std::uint32_t> labels(num_ext, 0);
        std::vector<std::uint8_t> train_mask(num_ext, 0);
        for (NodeId i = 0; i < num_local; ++i) {
            const NodeId v = shard.localGlobal[i];
            std::copy(data_.features.row(v),
                      data_.features.row(v) + feat_dim,
                      features.row(i));
            labels[i] = data_.labels[v];
            train_mask[i] = data_.trainMask[v];
        }
        Matrix targets;
        if (task_.multiLabel)
            targets = nn::multiLabelTargets(labels, task_.numClasses);

        ShardedModel model(cfg_, shard);
        HaloExchange exchange(shard);
        nn::Adam adam(model.inner().params(), cfg.lr, 0.9f, 0.999f,
                      1e-8f, cfg.weightDecay);
        const nn::ParamRefs params = model.inner().params();

        Matrix grad, probs;
        // Persistent gather lanes: only the rank-0 lane ever carries
        // payload, and its capacity is reused across evaluations.
        std::vector<std::vector<std::uint8_t>> gather_send(ranks),
            gather_recv;
        // Checkpoint gather lanes: each rank's 4 dropout-stream words.
        std::vector<std::vector<std::uint8_t>> ckpt_send(ranks),
            ckpt_recv;
        std::uint64_t steady_base = 0;

        if (resume_image) {
            auto ok =
                nn::readModelState(*resume_image, model.inner(), adam);
            if (!ok)
                throw std::runtime_error(
                    "ShardedTrainer: checkpoint rejected: " +
                    ok.error().describe());
            auto words = resume_image->getU64s("rng.rank" +
                                               std::to_string(r));
            if (!words || words.value().size() != 4)
                throw std::runtime_error(
                    "ShardedTrainer: checkpoint lacks the dropout "
                    "stream of rank " +
                    std::to_string(r));
            model.inner().dropoutRng().setStateWords(
                words.value().data());
        }

        char rank_tag[16];
        rank_tag[0] = '\0';
        if (telemetry::armed())
            std::snprintf(rank_tag, sizeof(rank_tag), "rank%u", r);

        for (std::uint32_t epoch = start_epoch; epoch < cfg.epochs;
             ++epoch) {
            MAXK_TRACE_SCOPE("dist.epoch", rank_tag);
            // Epoch-aligning barrier: when rank 0 samples the
            // allocation counter at the steady epoch, every rank has
            // finished its warm-up epochs.
            comm.barrier();
            if (cfg.faults)
                cfg.faults->maybeThrow("sharded.epoch", r);
            if (epoch == steady_epoch && r == 0)
                steady_base = AllocProbe::totalAllocCount();

            const std::uint64_t halo0 =
                comm.sentBytes(CommChannel::Halo);
            const Matrix *logits_ptr = nullptr;
            {
                MAXK_TRACE_SCOPE("dist.forward", rank_tag);
                logits_ptr =
                    &model.forward(comm, exchange, features, true);
            }
            const Matrix &logits = *logits_ptr;
            // Globally-normalised loss: dividing by the global
            // training-node count makes every local gradient row the
            // exact single-device gradient of that node.
            double loss_buf =
                task_.multiLabel
                    ? nn::sigmoidBceInto(logits, targets, train_mask,
                                         trainCount_, grad)
                    : nn::softmaxCrossEntropyInto(logits, labels,
                                                  train_mask,
                                                  trainCount_, grad,
                                                  probs);
            {
                MAXK_TRACE_SCOPE("dist.backward", rank_tag);
                model.backward(comm, exchange, grad);
            }
            train_halo[r] +=
                comm.sentBytes(CommChannel::Halo) - halo0;

            comm.allReduceSum(&loss_buf, 1);
            if (r == 0)
                result.train.trainLoss.push_back(loss_buf);

            // Fixed-order weight-gradient allReduce keeps the replicas
            // bitwise identical, so the optimizer step needs no
            // further synchronisation.
            for (nn::Param *p : params)
                comm.allReduceSum(p->grad.data(), p->grad.size());
            adam.step();

            if (epoch % eval_every == 0 || epoch + 1 == cfg.epochs) {
                MAXK_TRACE_SCOPE("dist.eval", rank_tag);
                const std::uint64_t eval0 =
                    comm.sentBytes(CommChannel::Halo);
                const Matrix &eval_logits =
                    model.forward(comm, exchange, features, false);
                eval_halo[r] +=
                    comm.sentBytes(CommChannel::Halo) - eval0;

                // Gather the local logits rows to rank 0, which
                // scatters them into global row order and evaluates
                // the metrics on the full matrix — identical inputs to
                // the single-device eval.
                gather_send[0].resize(std::size_t(num_local) *
                                      num_classes * sizeof(Float));
                if (num_local > 0)
                    std::memcpy(gather_send[0].data(),
                                eval_logits.row(0),
                                gather_send[0].size());
                comm.allToAllv(gather_send, gather_recv,
                               CommChannel::Gather);
                if (r == 0) {
                    for (std::uint32_t src = 0; src < ranks; ++src) {
                        const auto &rows =
                            plan_.shards[src].localGlobal;
                        const std::uint8_t *in =
                            gather_recv[src].data();
                        for (NodeId v : rows) {
                            std::memcpy(result.finalLogits.row(v), in,
                                        num_classes * sizeof(Float));
                            in += num_classes * sizeof(Float);
                        }
                    }
                    const double val = evalMetric(result.finalLogits,
                                                  data_.valMask);
                    const double test = evalMetric(result.finalLogits,
                                                   data_.testMask);
                    result.train.evalEpochs.push_back(epoch);
                    result.train.valMetric.push_back(val);
                    result.train.testMetric.push_back(test);
                    if (val >= result.train.bestValMetric) {
                        result.train.bestValMetric = val;
                        result.train.testAtBestVal = test;
                    }
                    result.train.finalTestMetric = test;
                }
            }

            if (store && ((epoch + 1) % ckpt_every == 0 ||
                          epoch + 1 == cfg.epochs)) {
                // Gather every rank's dropout-stream position; rank 0
                // writes one image describing the whole world.
                std::uint64_t words[4];
                model.inner().dropoutRng().stateWords(words);
                ckpt_send[0].resize(sizeof(words));
                std::memcpy(ckpt_send[0].data(), words, sizeof(words));
                comm.allToAllv(ckpt_send, ckpt_recv,
                               CommChannel::Gather);
                if (r == 0) {
                    nn::writeModelState(ck, model.inner(), adam);
                    nn::writeTrajectories(ck, result.train);
                    for (std::uint32_t src = 0; src < ranks; ++src)
                        ck.set("rng.rank" + std::to_string(src),
                               ckpt_recv[src].data(),
                               ckpt_recv[src].size());
                    ck.setU64("epoch", epoch);
                    auto saved = store->save(ck, epoch, cfg.faults);
                    if (!saved)
                        logMessage(
                            LogLevel::Warn,
                            "ShardedTrainer: checkpoint save failed: " +
                                saved.error().describe());
                }
            }
        }
        comm.barrier();
        if (r == 0 && cfg.epochs > steady_epoch)
            steady_allocs = AllocProbe::totalAllocCount() - steady_base;
    });

    for (std::uint32_t r = 0; r < ranks; ++r) {
        result.trainHaloBytes += train_halo[r];
        result.evalHaloBytes += eval_halo[r];
    }
    result.reduceBytes = world.totalSentBytes(CommChannel::Reduce);
    result.gatherBytes = world.totalSentBytes(CommChannel::Gather);
    result.steadyStateAllocCount = steady_allocs;
    result.train.hostSeconds = watch.seconds();
    return result;
}

} // namespace maxk::dist
