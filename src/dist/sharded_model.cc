#include "dist/sharded_model.hh"

#include <string>
#include <utility>

#include "common/logging.hh"
#include "kernels/registry.hh"

namespace maxk::dist
{

ShardedModel::ShardedModel(const nn::ModelConfig &cfg,
                           const HaloShard &shard)
    : shard_(shard), model_(cfg)
{
    if (cfg.kernelVariant != "auto")
        return;
    // Resolve once against the rank's extended subgraph (the adjacency
    // every aggregation here runs over) at the stack's hidden width,
    // then pin: re-selecting per launch would recompute the same answer
    // from the same cached stats.
    const kernels::KernelVariant &v = kernels::resolveSpmmVariant(
        "auto", shard.extGraph, cfg.hiddenDim);
    for (nn::GnnLayer &layer : model_.layers())
        layer.setKernelVariant(std::string(v.name));
}

const Matrix &
ShardedModel::forward(Communicator &comm, HaloExchange &ex,
                      const Matrix &x_ext, bool training)
{
    checkInvariant(x_ext.rows() == shard_.numExt(),
                   "ShardedModel::forward: feature rows != numExt");
    auto &layers = model_.layers();
    // outs_[l] is layer l's output; layer 0 reads the caller's feature
    // matrix directly (no per-epoch copy — the features never change).
    outs_.resize(layers.size());
    for (std::size_t l = 0; l < layers.size(); ++l) {
        nn::GnnLayer &layer = layers[l];
        const Matrix &in = l == 0 ? x_ext : outs_[l - 1];
        layer.forwardCompute(in, training, model_.dropoutRng());
        // Boundary activation exchange at the paper's wire point:
        // after the nonlinearity (CBSR for MaxK layers), before the
        // aggregation that reads the halo rows.
        if (layer.activationIsCbsr())
            ex.exchangeCbsr(comm, layer.activationCbsr());
        else
            ex.exchangeDense(comm, layer.activationDense());
        layer.forwardCombine(shard_.extGraph, outs_[l]);
    }
    return outs_.back();
}

void
ShardedModel::backward(Communicator &comm, HaloExchange &ex,
                       const Matrix &grad_logits)
{
    checkInvariant(grad_logits.rows() == shard_.numExt(),
                   "ShardedModel::backward: gradient rows != numExt");
    auto &layers = model_.layers();
    // The top layer reads the caller's gradient directly; below it the
    // upstream gradient ping-pongs between the two member workspaces.
    const Matrix *upstream = &grad_logits;
    for (std::size_t l = layers.size(); l-- > 0;) {
        nn::GnnLayer &layer = layers[l];
        layer.backwardAgg(shard_.extGraph, *upstream);
        // Reverse halo exchange: the partial gradients this rank
        // accumulated for remote-owned rows travel back to their
        // owners; our own boundary rows absorb the peers' partials.
        if (layer.activationIsCbsr())
            ex.reverseCbsr(comm, layer.gradAggCbsr());
        else
            ex.reverseDense(comm, layer.gradAggDense());
        layer.backwardPost(shard_.extGraph, *upstream, gradPrev_);
        std::swap(gradCur_, gradPrev_);
        upstream = &gradCur_;
    }
}

} // namespace maxk::dist
