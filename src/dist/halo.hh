/**
 * @file
 * Halo planning and exchange for partition-parallel training.
 *
 * A HaloPlan is compiled once from a Partition + CsrGraph. Each shard
 * (rank) owns its partition's vertices ("local", ext ids 0..numLocal)
 * and materialises one extra "halo" row per remote vertex that any
 * local row reads (ext ids numLocal..numExt, ascending global order).
 * The shard's induced subgraph is extended accordingly: local rows keep
 * *all* their edges — remapped to local/halo ids — and halo rows are
 * empty, so local aggregation outputs are exactly the single-device
 * values once the halo rows hold the owners' activations. Because a
 * vertex adjacent to three remote parts appears in three halo sets, the
 * plan is replica-exact: totalReplicas() equals
 * nn::boundaryReplicaCount() and the analytical exchange model.
 *
 * The per-layer exchange is a flat gather → send → scatter: sendRows
 * (per destination) gather local rows into one buffer per peer,
 * recvRows (per source) scatter received rows into the halo slots.
 * MaxK layers ship CBSR rows — k fp32 values plus k narrow indices per
 * row, the paper's ~(4+idx)*k bytes per boundary node instead of 4*dim
 * (Sec. 1) — and the final/ReLU layers ship dense fp32 rows. The
 * backward pass runs the same lists in reverse: partial gradients
 * accumulated into halo rows are shipped back to their owners, which
 * fold them into their local rows in rank order.
 */

#ifndef MAXK_DIST_HALO_HH
#define MAXK_DIST_HALO_HH

#include <cstdint>
#include <vector>

#include "core/cbsr.hh"
#include "dist/comm.hh"
#include "graph/csr.hh"
#include "graph/partition.hh"
#include "tensor/matrix.hh"

namespace maxk::dist
{

/** One rank's compiled shard: extended subgraph + exchange lists. */
struct HaloShard
{
    std::uint32_t rank = 0;
    std::vector<NodeId> localGlobal;  //!< global ids of local rows (asc)
    std::vector<NodeId> haloGlobal;   //!< global ids of halo rows (asc)

    /**
     * Extended subgraph: numExt() nodes; rows [0, numLocal()) carry the
     * full (remapped) adjacency of the local vertices with the global
     * graph's edge values, rows [numLocal(), numExt()) are empty. The
     * transpose cache is pre-built so the scatter-shaped backward never
     * builds it from inside a rank thread.
     */
    CsrGraph extGraph;

    /** sendRows[d]: local row ids shipped to rank d, ascending global
     *  order — matches shard d's recvRows[this rank] slot for slot. */
    std::vector<std::vector<NodeId>> sendRows;

    /** recvRows[s]: halo slot (ext row id) filled by rank s, ascending
     *  global order of the underlying vertices. */
    std::vector<std::vector<NodeId>> recvRows;

    NodeId numLocal() const
    {
        return static_cast<NodeId>(localGlobal.size());
    }
    NodeId numExt() const
    {
        return static_cast<NodeId>(localGlobal.size() +
                                   haloGlobal.size());
    }
};

/** Compiled halo-exchange plan for every rank of a partition. */
struct HaloPlan
{
    std::uint32_t numParts = 0;
    std::vector<HaloShard> shards;

    /** Σ over shards of their halo row count — the per-destination
     *  replica count the exchange model charges. */
    std::uint64_t totalReplicas() const;

    /**
     * Compile the plan. `g` must already carry the edge values the
     * model trains with (setAggregatorWeights on the *global* graph —
     * boundary rows must aggregate with global degrees, exactly like
     * the single-device run).
     */
    static HaloPlan build(const CsrGraph &g, const Partition &p);
};

/**
 * Per-rank halo exchange engine with persistent send/receive buffers
 * (steady-state epochs reuse their capacity; nothing here allocates
 * Matrix/CbsrMatrix storage). All methods are collectives on the Halo
 * channel: every rank must call the same method with the same layer
 * shape.
 */
class HaloExchange
{
  public:
    explicit HaloExchange(const HaloShard &shard) : shard_(shard) {}

    /** Fill m's halo rows with the owners' rows (forward, dense). */
    void exchangeDense(Communicator &comm, Matrix &m);

    /** Fill m's halo rows — values and indices — with the owners' CBSR
     *  rows (forward, MaxK layers). */
    void exchangeCbsr(Communicator &comm, CbsrMatrix &m);

    /** Ship m's halo rows back to their owners, add the received
     *  partials into the local boundary rows (in rank order), then zero
     *  the halo rows (backward, dense). */
    void reverseDense(Communicator &comm, Matrix &m);

    /** Reverse exchange of CBSR gradient rows: data is accumulated at
     *  the (shared) forward pattern; indices travel along as the wire
     *  format's self-description and are checked in debug builds. */
    void reverseCbsr(Communicator &comm, CbsrMatrix &m);

  private:
    const HaloShard &shard_;
    std::vector<std::vector<std::uint8_t>> sendBuf_;
    std::vector<std::vector<std::uint8_t>> recvBuf_;
};

} // namespace maxk::dist

#endif // MAXK_DIST_HALO_HH
