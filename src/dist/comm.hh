/**
 * @file
 * Deterministic in-process communicator for the sharded execution
 * subsystem (ISSUE 5 tentpole).
 *
 * A CommWorld hosts R ranks, one thread per rank, exchanging data
 * through mutex/condvar-synchronised mailboxes — an in-process model of
 * the NCCL collectives a partition-parallel MaxK-GNN deployment would
 * issue (paper Sec. 1, BNS-GCN-style). Three properties the sharded
 * trainer builds on:
 *
 *  - **Determinism.** Every collective produces the same bytes no
 *    matter how the rank threads interleave: all-to-all lanes are
 *    copied from immutable source buffers between two phase barriers,
 *    and allReduceSum folds the rank buffers in fixed rank order
 *    0..R-1, so every rank computes the bit-identical sum.
 *  - **Accounting.** Per-rank sent/received byte counters, split by
 *    channel (halo exchange / gradient reduction / diagnostics gather),
 *    so tests can reconcile the measured exchange volume against the
 *    analytical profileDistributedEpoch model exactly.
 *  - **No hidden allocation.** Collectives write into caller-owned
 *    buffers; the only internal scratch is a persistent per-rank
 *    reduction buffer that reaches steady capacity after the first
 *    epoch.
 *
 * The collectives are SPMD: every rank must call the same sequence of
 * operations. A rank that throws instead aborts the world, waking every
 * blocked peer with CommAborted so run() can rethrow the root cause.
 */

#ifndef MAXK_DIST_COMM_HH
#define MAXK_DIST_COMM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/fault.hh"
#include "common/types.hh"

namespace maxk::dist
{

/** Traffic classes the byte counters distinguish. */
enum class CommChannel : std::uint32_t
{
    Halo = 0,    //!< boundary activation / gradient halo rows
    Reduce = 1,  //!< loss and weight-gradient all-reduce
    Gather = 2,  //!< logits gather for evaluation / diagnostics
};

inline constexpr std::uint32_t kNumCommChannels = 3;

/** Per-rank byte counters, one lane per channel. Self-sends (a rank's
 *  lane to itself in an all-to-all) are local copies and not counted. */
struct CommTraffic
{
    std::uint64_t sent[kNumCommChannels] = {0, 0, 0};
    std::uint64_t received[kNumCommChannels] = {0, 0, 0};
};

/** Thrown in ranks blocked on a collective when a peer aborts. */
struct CommAborted : std::runtime_error
{
    CommAborted() : std::runtime_error("CommWorld aborted") {}
};

/**
 * A collective exceeded its phase deadline — either the real wall-clock
 * timeout armed via CommWorld::setPhaseTimeout, or an injected
 * non-transient CommTimeout fault. Distinct from CommAborted: a timeout
 * is a root cause (run() rethrows it), an abort is a consequence.
 */
struct CommTimeout : std::runtime_error
{
    explicit CommTimeout(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

struct CommShared; // mailbox state, defined in comm.cc

/**
 * One rank's endpoint. Obtained from CommWorld::run(); valid only
 * inside the rank function. All collectives must be called by every
 * rank of the world in the same order (SPMD).
 */
class Communicator
{
  public:
    std::uint32_t rank() const { return rank_; }
    std::uint32_t worldSize() const;

    /** Block until every rank arrived. */
    void barrier();

    /**
     * Variable all-to-all: `send[d]` is this rank's payload for rank d
     * (size R; lanes may be empty). On return `recv[s]` holds rank s's
     * payload for this rank. Buffer capacity is reused across calls.
     */
    void allToAllv(const std::vector<std::vector<std::uint8_t>> &send,
                   std::vector<std::vector<std::uint8_t>> &recv,
                   CommChannel channel);

    /**
     * In-place sum all-reduce over `data[0..count)`. Every rank folds
     * the rank buffers in rank order 0..R-1, so the result is
     * bit-identical on every rank and across runs and thread counts.
     */
    void allReduceSum(Float *data, std::size_t count,
                      CommChannel channel = CommChannel::Reduce);
    void allReduceSum(double *data, std::size_t count,
                      CommChannel channel = CommChannel::Reduce);

    /** Bytes this rank sent / received on a channel so far. */
    std::uint64_t sentBytes(CommChannel channel) const
    {
        return traffic_.sent[static_cast<std::uint32_t>(channel)];
    }
    std::uint64_t receivedBytes(CommChannel channel) const
    {
        return traffic_.received[static_cast<std::uint32_t>(channel)];
    }
    const CommTraffic &traffic() const { return traffic_; }

    /** Transient injected comm faults this rank absorbed by retrying. */
    std::uint64_t transientRetries() const { return retries_; }

  private:
    friend class CommWorld;
    Communicator(CommShared *shared, std::uint32_t rank)
        : shared_(shared), rank_(rank)
    {
    }

    /** One phase barrier of the mailbox protocol (throws on abort). */
    void sync();
    /** Publish this rank's slot pointer, then sync(). */
    void publish(const void *ptr);

    /**
     * Fault hook (ISSUE 9). Polls the world's injector for (site,
     * rank_): transient CommTimeout faults are absorbed by a bounded
     * retry (each retry re-polls, so the visit counter advances past
     * the scheduled occurrence); non-transient CommTimeout throws the
     * typed CommTimeout; any other kind throws InjectedFault. Entry
     * hooks run before the collective's first barrier, so a throwing
     * rank leaves its peers parked at that barrier where the abort
     * flag wakes them — never mid-copy of this rank's buffers. The
     * ".mid" sites fire between the publish and the final barrier;
     * tests using them must keep the collective's buffers alive past
     * the unwind (owned outside the rank function).
     */
    void faultPoint(const char *site);

    template <class T>
    void reduceImpl(T *data, std::size_t count, std::vector<T> &scratch,
                    CommChannel channel);

    CommShared *shared_;
    std::uint32_t rank_;
    CommTraffic traffic_;
    std::uint64_t retries_ = 0;
    std::vector<Float> scratchF_;
    std::vector<double> scratchD_;
};

/**
 * A world of R ranks. Construct once, then run() one SPMD function; the
 * call spawns one thread per rank, blocks until all complete, and
 * rethrows the first rank exception (by rank order) if any rank threw.
 * Traffic counters accumulate across run() calls and are readable once
 * run() returned.
 */
class CommWorld
{
  public:
    explicit CommWorld(std::uint32_t ranks);
    ~CommWorld();

    CommWorld(const CommWorld &) = delete;
    CommWorld &operator=(const CommWorld &) = delete;

    std::uint32_t ranks() const;

    void run(const std::function<void(Communicator &)> &fn);

    /** Post-run traffic of one rank. */
    const CommTraffic &traffic(std::uint32_t rank) const;

    /** Σ over ranks of sentBytes(channel). */
    std::uint64_t totalSentBytes(CommChannel channel) const;

    /** Attach a fault injector polled at the collective hook sites
     *  ("comm.allToAllv"[".mid"], "comm.allReduceSum"[".mid"],
     *  "comm.barrier"). Not owned; nullptr detaches. */
    void setFaultInjector(FaultInjector *faults);

    /**
     * Arm a wall-clock deadline per barrier phase: a rank waiting
     * longer than `seconds` aborts the world and throws CommTimeout
     * (the in-process analogue of a collective watchdog). 0 disables
     * (the default — deterministic tests inject timeouts through the
     * fault plan instead).
     */
    void setPhaseTimeout(double seconds);

    /** Σ over ranks of transientRetries(). */
    std::uint64_t totalTransientRetries() const;

  private:
    std::unique_ptr<CommShared> shared_;
    std::vector<Communicator> comms_;
};

} // namespace maxk::dist

#endif // MAXK_DIST_COMM_HH
