#include "tensor/init.hh"

#include <cmath>

namespace maxk
{

void
xavierUniform(Matrix &w, Rng &rng)
{
    const Float bound =
        std::sqrt(6.0f / static_cast<Float>(w.rows() + w.cols()));
    fillUniform(w, rng, -bound, bound);
}

void
kaimingNormal(Matrix &w, Rng &rng)
{
    const Float stddev = std::sqrt(2.0f / static_cast<Float>(w.rows()));
    fillNormal(w, rng, 0.0f, stddev);
}

void
fillNormal(Matrix &w, Rng &rng, Float mean, Float stddev)
{
    Float *d = w.data();
    for (std::size_t i = 0; i < w.size(); ++i)
        d[i] = rng.normal(mean, stddev);
}

void
fillUniform(Matrix &w, Rng &rng, Float lo, Float hi)
{
    Float *d = w.data();
    for (std::size_t i = 0; i < w.size(); ++i)
        d[i] = rng.uniform(lo, hi);
}

} // namespace maxk
