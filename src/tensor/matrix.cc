#include "tensor/matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "tensor/alloc_probe.hh"

namespace maxk
{

namespace
{
constexpr allocprobe::Kind kKind = allocprobe::Kind::Matrix;
} // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
    allocprobe::acquired(data_, kKind);
}

Matrix::Matrix(std::size_t rows, std::size_t cols, Float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
    allocprobe::acquired(data_, kKind);
}

Matrix::Matrix(const Matrix &other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_)
{
    allocprobe::acquired(data_, kKind);
}

Matrix &
Matrix::operator=(const Matrix &other)
{
    if (this != &other) {
        rows_ = other.rows_;
        cols_ = other.cols_;
        allocprobe::tracked(data_, kKind, [&] { data_ = other.data_; });
    }
    return *this;
}

Matrix &
Matrix::operator=(Matrix &&other) noexcept
{
    if (this != &other) {
        allocprobe::released(data_);
        data_ = std::move(other.data_);
        rows_ = other.rows_;
        cols_ = other.cols_;
        other.rows_ = 0;
        other.cols_ = 0;
        // The moved-from vector is left without storage by the steal;
        // release anything it might still hold (defensive: the standard
        // only guarantees "valid but unspecified").
        allocprobe::released(other.data_);
        other.data_.clear();
        other.data_.shrink_to_fit();
    }
    return *this;
}

Matrix::~Matrix()
{
    allocprobe::released(data_);
}

void
Matrix::setZero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

void
Matrix::fill(Float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::reshape(std::size_t rows, std::size_t cols)
{
    checkInvariant(rows * cols == data_.size(),
                   "Matrix::reshape element count mismatch");
    rows_ = rows;
    cols_ = cols;
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    allocprobe::tracked(data_, kKind,
                        [&] { data_.assign(rows * cols, 0.0f); });
}

void
Matrix::ensureShape(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    const std::size_t n = rows * cols;
    if (data_.size() == n)
        return;
    allocprobe::tracked(data_, kKind, [&] { data_.resize(n); });
}

Float
Matrix::maxAbs() const
{
    Float best = 0.0f;
    for (Float v : data_)
        best = std::max(best, std::fabs(v));
    return best;
}

double
Matrix::sum() const
{
    double acc = 0.0;
    for (Float v : data_)
        acc += v;
    return acc;
}

double
Matrix::norm() const
{
    double acc = 0.0;
    for (Float v : data_)
        acc += static_cast<double>(v) * v;
    return std::sqrt(acc);
}

bool
Matrix::equals(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

bool
Matrix::approxEquals(const Matrix &other, Float tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i)
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    return true;
}

} // namespace maxk
