#include "tensor/matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace maxk
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, Float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

void
Matrix::setZero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

void
Matrix::fill(Float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::reshape(std::size_t rows, std::size_t cols)
{
    checkInvariant(rows * cols == data_.size(),
                   "Matrix::reshape element count mismatch");
    rows_ = rows;
    cols_ = cols;
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
}

Float
Matrix::maxAbs() const
{
    Float best = 0.0f;
    for (Float v : data_)
        best = std::max(best, std::fabs(v));
    return best;
}

double
Matrix::sum() const
{
    double acc = 0.0;
    for (Float v : data_)
        acc += v;
    return acc;
}

double
Matrix::norm() const
{
    double acc = 0.0;
    for (Float v : data_)
        acc += static_cast<double>(v) * v;
    return std::sqrt(acc);
}

bool
Matrix::equals(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

bool
Matrix::approxEquals(const Matrix &other, Float tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i)
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    return true;
}

} // namespace maxk
