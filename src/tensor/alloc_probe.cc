#include "tensor/alloc_probe.hh"

#include <atomic>

namespace maxk
{

namespace
{

std::atomic<std::uint64_t> g_matrixAllocs{0};
std::atomic<std::uint64_t> g_cbsrAllocs{0};
std::atomic<std::int64_t> g_liveBytes{0};
std::atomic<std::int64_t> g_peakBytes{0};

} // namespace

namespace allocprobe
{

void
noteAlloc(Kind kind)
{
    if (kind == Kind::Matrix)
        g_matrixAllocs.fetch_add(1, std::memory_order_relaxed);
    else
        g_cbsrAllocs.fetch_add(1, std::memory_order_relaxed);
}

void
noteBytes(std::int64_t delta)
{
    const std::int64_t live =
        g_liveBytes.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t peak = g_peakBytes.load(std::memory_order_relaxed);
    while (live > peak &&
           !g_peakBytes.compare_exchange_weak(peak, live,
                                              std::memory_order_relaxed)) {
    }
}

} // namespace allocprobe

std::uint64_t
AllocProbe::matrixAllocCount()
{
    return g_matrixAllocs.load(std::memory_order_relaxed);
}

std::uint64_t
AllocProbe::cbsrAllocCount()
{
    return g_cbsrAllocs.load(std::memory_order_relaxed);
}

std::uint64_t
AllocProbe::totalAllocCount()
{
    return matrixAllocCount() + cbsrAllocCount();
}

std::uint64_t
AllocProbe::liveBytes()
{
    const std::int64_t live = g_liveBytes.load(std::memory_order_relaxed);
    return live > 0 ? static_cast<std::uint64_t>(live) : 0;
}

std::uint64_t
AllocProbe::peakBytes()
{
    const std::int64_t peak = g_peakBytes.load(std::memory_order_relaxed);
    return peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
}

void
AllocProbe::resetAllocCounts()
{
    g_matrixAllocs.store(0, std::memory_order_relaxed);
    g_cbsrAllocs.store(0, std::memory_order_relaxed);
}

void
AllocProbe::resetPeak()
{
    g_peakBytes.store(g_liveBytes.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

} // namespace maxk
