/**
 * @file
 * Weight / feature initialisers. All draw from the project Rng so results
 * are reproducible bit-for-bit.
 */

#ifndef MAXK_TENSOR_INIT_HH
#define MAXK_TENSOR_INIT_HH

#include "common/rng.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Xavier/Glorot uniform: U(-sqrt(6/(fanIn+fanOut)), +...). */
void xavierUniform(Matrix &w, Rng &rng);

/** Kaiming/He normal: N(0, sqrt(2/fanIn)). */
void kaimingNormal(Matrix &w, Rng &rng);

/** Fill with i.i.d. N(mean, stddev). */
void fillNormal(Matrix &w, Rng &rng, Float mean, Float stddev);

/** Fill with i.i.d. U(lo, hi). */
void fillUniform(Matrix &w, Rng &rng, Float lo, Float hi);

} // namespace maxk

#endif // MAXK_TENSOR_INIT_HH
