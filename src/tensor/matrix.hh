/**
 * @file
 * Dense row-major fp32 matrix.
 *
 * This is the feature/weight container used throughout the reproduction:
 * node-embedding matrices X (|V| x dim), layer weights W (in x out), and
 * gradients. Storage is a single contiguous vector so the gpusim memory
 * model can reason about row addresses.
 */

#ifndef MAXK_TENSOR_MATRIX_HH
#define MAXK_TENSOR_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace maxk
{

/** Dense row-major matrix of Float. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-initialised. */
    Matrix(std::size_t rows, std::size_t cols);

    /** rows x cols matrix filled with a constant. */
    Matrix(std::size_t rows, std::size_t cols, Float fill);

    // Storage changes are reported to AllocProbe (tensor/alloc_probe.hh)
    // so tests can assert the training hot loop is allocation-free;
    // hence the explicit copy/move/destroy set.
    Matrix(const Matrix &other);
    Matrix(Matrix &&other) noexcept = default;
    Matrix &operator=(const Matrix &other);
    Matrix &operator=(Matrix &&other) noexcept;
    ~Matrix();

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Element access (row r, column c); no bounds check in release. */
    Float &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    Float at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    Float *row(std::size_t r) { return data_.data() + r * cols_; }
    const Float *row(std::size_t r) const { return data_.data() + r * cols_; }

    Float *data() { return data_.data(); }
    const Float *data() const { return data_.data(); }

    /** Reset every element to zero without reallocating. */
    void setZero();

    /** Fill every element with the given value. */
    void fill(Float value);

    /** Reshape to new dimensions; total element count must match. */
    void reshape(std::size_t rows, std::size_t cols);

    /** Resize (destructive; contents become zero). */
    void resize(std::size_t rows, std::size_t cols);

    /**
     * Adopt the given shape, reusing the existing storage whenever the
     * element count already matches — guaranteed no-op in that case (no
     * reallocation, no zero-fill). Contents are unspecified after a
     * shape change; callers must fully overwrite or setZero(). This is
     * the right call for kernel outputs that are written every launch.
     */
    void ensureShape(std::size_t rows, std::size_t cols);

    /** Max absolute element (0 for empty). */
    Float maxAbs() const;

    /** Sum of all elements. */
    double sum() const;

    /** Frobenius norm. */
    double norm() const;

    /** True if dimensions and all elements match exactly. */
    bool equals(const Matrix &other) const;

    /** True if dimensions match and elements agree within tol. */
    bool approxEquals(const Matrix &other, Float tol) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Float> data_;
};

} // namespace maxk

#endif // MAXK_TENSOR_MATRIX_HH
