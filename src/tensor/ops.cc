#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace maxk
{

void
gemm(const Matrix &a, const Matrix &b, Matrix &c)
{
    c.resize(a.rows(), b.cols());
    gemmAccum(a, b, c);
}

void
gemmAccum(const Matrix &a, const Matrix &b, Matrix &c)
{
    checkInvariant(a.cols() == b.rows(), "gemm: inner dimension mismatch");
    checkInvariant(c.rows() == a.rows() && c.cols() == b.cols(),
                   "gemm: output shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    for (std::size_t i = 0; i < m; ++i) {
        const Float *arow = a.row(i);
        Float *crow = c.row(i);
        for (std::size_t p = 0; p < k; ++p) {
            const Float av = arow[p];
            if (av == 0.0f)
                continue;
            const Float *brow = b.row(p);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmTransA(const Matrix &a, const Matrix &b, Matrix &c)
{
    checkInvariant(a.rows() == b.rows(), "gemmTransA: row count mismatch");
    c.resize(a.cols(), b.cols());
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    for (std::size_t p = 0; p < k; ++p) {
        const Float *arow = a.row(p);
        const Float *brow = b.row(p);
        for (std::size_t i = 0; i < m; ++i) {
            const Float av = arow[i];
            if (av == 0.0f)
                continue;
            Float *crow = c.row(i);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmTransB(const Matrix &a, const Matrix &b, Matrix &c)
{
    checkInvariant(a.cols() == b.cols(), "gemmTransB: col count mismatch");
    c.resize(a.rows(), b.rows());
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const Float *arow = a.row(i);
        Float *crow = c.row(i);
        for (std::size_t j = 0; j < n; ++j) {
            const Float *brow = b.row(j);
            Float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] += acc;
        }
    }
}

void
transpose(const Matrix &in, Matrix &out)
{
    out.resize(in.cols(), in.rows());
    for (std::size_t i = 0; i < in.rows(); ++i)
        for (std::size_t j = 0; j < in.cols(); ++j)
            out.at(j, i) = in.at(i, j);
}

void
addInPlace(Matrix &dst, const Matrix &src)
{
    checkInvariant(dst.rows() == src.rows() && dst.cols() == src.cols(),
                   "addInPlace: shape mismatch");
    Float *d = dst.data();
    const Float *s = src.data();
    for (std::size_t i = 0; i < dst.size(); ++i)
        d[i] += s[i];
}

void
axpy(Matrix &dst, Float alpha, const Matrix &src)
{
    checkInvariant(dst.size() == src.size(), "axpy: size mismatch");
    Float *d = dst.data();
    const Float *s = src.data();
    for (std::size_t i = 0; i < dst.size(); ++i)
        d[i] += alpha * s[i];
}

void
scaleInPlace(Matrix &dst, Float alpha)
{
    Float *d = dst.data();
    for (std::size_t i = 0; i < dst.size(); ++i)
        d[i] *= alpha;
}

void
subtract(const Matrix &a, const Matrix &b, Matrix &out)
{
    checkInvariant(a.rows() == b.rows() && a.cols() == b.cols(),
                   "subtract: shape mismatch");
    out.resize(a.rows(), a.cols());
    const Float *pa = a.data();
    const Float *pb = b.data();
    Float *po = out.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        po[i] = pa[i] - pb[i];
}

void
addRowVector(Matrix &dst, const Matrix &bias)
{
    checkInvariant(bias.size() == dst.cols(),
                   "addRowVector: bias length mismatch");
    const Float *b = bias.data();
    for (std::size_t i = 0; i < dst.rows(); ++i) {
        Float *row = dst.row(i);
        for (std::size_t j = 0; j < dst.cols(); ++j)
            row[j] += b[j];
    }
}

void
columnSums(const Matrix &in, Matrix &out)
{
    out.resize(1, in.cols());
    Float *o = out.data();
    for (std::size_t i = 0; i < in.rows(); ++i) {
        const Float *row = in.row(i);
        for (std::size_t j = 0; j < in.cols(); ++j)
            o[j] += row[j];
    }
}

void
hadamard(const Matrix &a, const Matrix &b, Matrix &out)
{
    checkInvariant(a.rows() == b.rows() && a.cols() == b.cols(),
                   "hadamard: shape mismatch");
    out.resize(a.rows(), a.cols());
    const Float *pa = a.data();
    const Float *pb = b.data();
    Float *po = out.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        po[i] = pa[i] * pb[i];
}

void
reluForward(const Matrix &in, Matrix &out)
{
    out.ensureShape(in.rows(), in.cols());
    const Float *pi = in.data();
    Float *po = out.data();
    for (std::size_t i = 0; i < in.size(); ++i)
        po[i] = pi[i] > 0.0f ? pi[i] : 0.0f;
}

void
reluBackward(const Matrix &input, const Matrix &gradOut, Matrix &gradIn)
{
    checkInvariant(input.size() == gradOut.size(),
                   "reluBackward: shape mismatch");
    gradIn.ensureShape(input.rows(), input.cols());
    const Float *pi = input.data();
    const Float *pg = gradOut.data();
    Float *po = gradIn.data();
    for (std::size_t i = 0; i < input.size(); ++i)
        po[i] = pi[i] > 0.0f ? pg[i] : 0.0f;
}

void
rowSoftmax(const Matrix &in, Matrix &out)
{
    out.resize(in.rows(), in.cols());
    for (std::size_t i = 0; i < in.rows(); ++i) {
        const Float *row = in.row(i);
        Float *orow = out.row(i);
        Float mx = row[0];
        for (std::size_t j = 1; j < in.cols(); ++j)
            mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (std::size_t j = 0; j < in.cols(); ++j) {
            orow[j] = std::exp(row[j] - mx);
            denom += orow[j];
        }
        const Float inv = static_cast<Float>(1.0 / denom);
        for (std::size_t j = 0; j < in.cols(); ++j)
            orow[j] *= inv;
    }
}

void
sigmoid(const Matrix &in, Matrix &out)
{
    out.resize(in.rows(), in.cols());
    const Float *pi = in.data();
    Float *po = out.data();
    for (std::size_t i = 0; i < in.size(); ++i)
        po[i] = 1.0f / (1.0f + std::exp(-pi[i]));
}

} // namespace maxk
