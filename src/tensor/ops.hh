/**
 * @file
 * Dense linear-algebra kernels on Matrix.
 *
 * These back the Linear layers of the GNN models (the X*W stage of Fig. 3)
 * and all autograd math. GEMMs use an ikj loop order so the inner loop
 * streams both B and C rows, which the compiler auto-vectorises.
 */

#ifndef MAXK_TENSOR_OPS_HH
#define MAXK_TENSOR_OPS_HH

#include "tensor/matrix.hh"

namespace maxk
{

/** C = A * B. A: m x k, B: k x n, C resized to m x n. */
void gemm(const Matrix &a, const Matrix &b, Matrix &c);

/** C += A * B (C must already be m x n). */
void gemmAccum(const Matrix &a, const Matrix &b, Matrix &c);

/** C = A^T * B. A: k x m, B: k x n, C resized to m x n. */
void gemmTransA(const Matrix &a, const Matrix &b, Matrix &c);

/** C = A * B^T. A: m x k, B: n x k, C resized to m x n. */
void gemmTransB(const Matrix &a, const Matrix &b, Matrix &c);

/** out = transpose(in). */
void transpose(const Matrix &in, Matrix &out);

/** dst += src (same shape). */
void addInPlace(Matrix &dst, const Matrix &src);

/** dst += alpha * src (same shape). */
void axpy(Matrix &dst, Float alpha, const Matrix &src);

/** dst *= alpha. */
void scaleInPlace(Matrix &dst, Float alpha);

/** out = a - b (same shape). */
void subtract(const Matrix &a, const Matrix &b, Matrix &out);

/** Add a row vector (1 x n or length-n matrix) to every row of dst. */
void addRowVector(Matrix &dst, const Matrix &bias);

/** Column-wise sum of in -> out (1 x n). Used for bias gradients. */
void columnSums(const Matrix &in, Matrix &out);

/** Element-wise product: dst = a ⊙ b. */
void hadamard(const Matrix &a, const Matrix &b, Matrix &out);

/** Element-wise ReLU forward: out = max(in, 0). */
void reluForward(const Matrix &in, Matrix &out);

/**
 * Element-wise ReLU backward: gradIn = gradOut where forward input was
 * positive, else 0.
 */
void reluBackward(const Matrix &input, const Matrix &gradOut,
                  Matrix &gradIn);

/** Row-wise softmax (numerically stabilised). */
void rowSoftmax(const Matrix &in, Matrix &out);

/** Element-wise sigmoid. */
void sigmoid(const Matrix &in, Matrix &out);

} // namespace maxk

#endif // MAXK_TENSOR_OPS_HH
