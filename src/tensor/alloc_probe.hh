/**
 * @file
 * Heap-allocation probe for the feature/gradient containers.
 *
 * The training hot loop is supposed to run allocation-free once the
 * per-layer workspaces are warm (ISSUE 4 / paper Sec. 4: the speedup
 * story assumes the CBSR buffers live across epochs). This probe makes
 * that property testable: Matrix and CbsrMatrix report every heap
 * (re)allocation of their storage vectors and keep a live/peak byte
 * gauge, so a test can assert "steady-state epoch => zero allocations"
 * and the perf harness can report transient workspace growth per kernel.
 *
 * Only Matrix/CbsrMatrix storage is tracked — graph arrays and the
 * small std::vector scratch buffers inside kernels are not workspaces
 * in the sense of the zero-allocation contract. Counters are global,
 * atomic (relaxed), and safe to read from tests running the thread-pool
 * hot paths.
 */

#ifndef MAXK_TENSOR_ALLOC_PROBE_HH
#define MAXK_TENSOR_ALLOC_PROBE_HH

#include <cstdint>

namespace maxk
{

/** Process-wide allocation counters for Matrix / CbsrMatrix storage. */
struct AllocProbe
{
    /** Heap (re)allocations performed by Matrix storage since reset. */
    static std::uint64_t matrixAllocCount();

    /** Heap (re)allocations performed by CbsrMatrix storage since reset. */
    static std::uint64_t cbsrAllocCount();

    /** matrixAllocCount() + cbsrAllocCount(). */
    static std::uint64_t totalAllocCount();

    /** Bytes currently held by live Matrix/CbsrMatrix storage. */
    static std::uint64_t liveBytes();

    /** High-water mark of liveBytes() since the last resetPeak(). */
    static std::uint64_t peakBytes();

    /** Zero both allocation counters (the live/peak gauges keep going). */
    static void resetAllocCounts();

    /** Restart the high-water mark from the current live level. */
    static void resetPeak();
};

namespace allocprobe
{

/** Container kinds the probe distinguishes. */
enum class Kind { Matrix, Cbsr };

/** Record one heap (re)allocation event of the given container kind. */
void noteAlloc(Kind kind);

/** Adjust the live-bytes gauge (positive on growth, negative on free);
 *  updates the peak when the gauge rises past it. */
void noteBytes(std::int64_t delta);

/**
 * Run a storage mutation and account any capacity change: call with the
 * vector about to be mutated and a callable performing the mutation.
 * Counts one allocation event when the capacity grew (std::vector only
 * reallocates upward) and feeds the byte delta to the gauge.
 */
template <class Vec, class Fn>
void
tracked(Vec &v, Kind kind, Fn &&fn)
{
    const std::size_t before = v.capacity();
    fn();
    const std::size_t after = v.capacity();
    if (after != before) {
        if (after > before)
            noteAlloc(kind);
        noteBytes((static_cast<std::int64_t>(after) -
                   static_cast<std::int64_t>(before)) *
                  static_cast<std::int64_t>(sizeof(typename Vec::value_type)));
    }
}

/** Account a freshly constructed (copied) vector's storage. */
template <class Vec>
void
acquired(const Vec &v, Kind kind)
{
    if (v.capacity() > 0) {
        noteAlloc(kind);
        noteBytes(static_cast<std::int64_t>(v.capacity()) *
                  static_cast<std::int64_t>(sizeof(typename Vec::value_type)));
    }
}

/** Account a vector whose storage is about to be destroyed/released. */
template <class Vec>
void
released(const Vec &v)
{
    if (v.capacity() > 0)
        noteBytes(-static_cast<std::int64_t>(v.capacity()) *
                  static_cast<std::int64_t>(sizeof(typename Vec::value_type)));
}

} // namespace allocprobe

} // namespace maxk

#endif // MAXK_TENSOR_ALLOC_PROBE_HH
