/**
 * @file
 * Kernel-profiling tool: pick any Table-1 dataset and k, get the full
 * memory-system comparison of cuSPARSE-like SpMM vs MaxK-GNN's SpGEMM
 * and SSpMM on its twin — a Table-2-style readout for every graph.
 *
 * Usage: kernel_profile [dataset] [k] [dim_origin]
 *   defaults: Reddit 32 256
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.hh"
#include "common/table.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "graph/edge_groups.hh"
#include "graph/registry.hh"
#include "graph/stats.hh"
#include "kernels/spmm_gnna.hh"
#include "kernels/spmm_row_wise.hh"
#include "tensor/init.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    const std::string dataset = argc > 1 ? argv[1] : "Reddit";
    const std::uint32_t k =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 32;
    const std::uint32_t dim =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 256;

    const auto info = findDataset(dataset);
    if (!info) {
        std::fprintf(stderr, "unknown dataset '%s'; known graphs:\n",
                     dataset.c_str());
        for (const auto &d : kernelSuite())
            std::fprintf(stderr, "  %s\n", d.name.c_str());
        return 1;
    }
    if (k == 0 || k > dim) {
        std::fprintf(stderr, "need 1 <= k <= dim_origin\n");
        return 1;
    }

    Rng rng(3);
    CsrGraph g = materializeGraph(*info, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);
    std::printf("%s twin: %s\n", dataset.c_str(),
                describe(computeDegreeStats(g)).c_str());

    const double paper_ws =
        static_cast<double>(info->paperNodes) * dim * 4.0 +
        static_cast<double>(info->paperEdges) * 8.0;
    const double twin_ws =
        static_cast<double>(g.numNodes()) * dim * 4.0 +
        static_cast<double>(g.numEdges()) * 8.0;
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(
        twin_ws / paper_ws);

    Matrix x(g.numNodes(), dim);
    fillNormal(x, rng, 0.0f, 1.0f);

    Matrix y;
    const auto spmm = spmmRowWise(g, x, y, opt);
    const auto gnna = spmmGnna(g, part, x, y, opt);
    MaxKResult mk = maxkCompress(x, k, opt);
    const auto spgemm = spgemmForward(g, part, mk.cbsr, y, opt);
    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    const auto sspmm = sspmmBackward(g, part, y, dxs, opt);

    TextTable t({"kernel", "sim ms", "l2 req MB", "dram MB", "L1 %",
                 "L2 %", "atomic sectors", "bound"});
    auto add = [&](const gpusim::KernelStats &s) {
        const auto a = s.aggregate();
        t.addRow({s.kernel, formatFloat(s.milliseconds(), 4),
                  formatFloat(a.l2ReqBytes / 1e6, 1),
                  formatFloat((a.dramReadBytes + a.dramWriteBytes) / 1e6,
                              1),
                  formatFloat(s.l1HitRate() * 100.0, 1),
                  formatFloat(s.l2HitRate() * 100.0, 1),
                  std::to_string(a.atomicSectors), s.bottleneck});
    };
    add(spmm);
    add(gnna);
    add(mk.stats);
    add(spgemm);
    add(sspmm);
    std::printf("\n%s\n", t.render().c_str());

    std::printf("speedups at k=%u: SpGEMM %.2fx / SSpMM %.2fx vs "
                "cuSPARSE; %.2fx / %.2fx vs GNNA\n",
                k, spmm.totalSeconds / spgemm.totalSeconds,
                spmm.totalSeconds / sspmm.totalSeconds,
                gnna.totalSeconds / spgemm.totalSeconds,
                gnna.totalSeconds / sspmm.totalSeconds);
    return 0;
}
