/**
 * @file
 * Quickstart: the MaxK-GNN pipeline in ~60 lines.
 *
 *  1. Build a graph and give it aggregator edge weights.
 *  2. Apply the MaxK nonlinearity to a feature matrix -> CBSR.
 *  3. Aggregate with the forward SpGEMM kernel.
 *  4. Backpropagate with the backward SSpMM kernel.
 *  5. Read the simulated GPU profile of each launch.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "tensor/init.hh"

using namespace maxk;

int
main()
{
    // 1. A power-law graph with SAGE mean-aggregator edge weights.
    Rng rng(42);
    CsrGraph graph = rmat(/*scale=*/12, /*target_edges=*/300000, rng);
    graph.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(graph, /*cap=*/32);
    std::printf("graph: %u nodes, %u edges, avg degree %.1f\n",
                graph.numNodes(), graph.numEdges(), graph.avgDegree());

    // 2. Node features and the MaxK nonlinearity (dim 256 -> k = 32).
    Matrix features(graph.numNodes(), 256);
    fillNormal(features, rng, 0.0f, 1.0f);
    SimOptions opt; // A100 device model with default settings
    MaxKResult maxk = maxkCompress(features, /*k=*/32, opt);
    std::printf("maxk:   kept %u of %u values/row -> CBSR %.1f MB "
                "(dense: %.1f MB)\n",
                maxk.cbsr.dimK(), maxk.cbsr.dimOrigin(),
                maxk.cbsr.storageBytes() / 1e6,
                features.size() * sizeof(Float) / 1e6);

    // 3. Forward aggregation: X_l = A * CBSR(h).
    Matrix out;
    const auto fwd = spgemmForward(graph, part, maxk.cbsr, out, opt);
    std::printf("fwd:    %s\n", fwd.summary(opt.device).c_str());

    // 4. Backward: sampled gradient at the forward sparsity pattern.
    CbsrMatrix grad;
    grad.adoptPattern(maxk.cbsr);
    const auto bwd = sspmmBackward(graph, part, out, grad, opt);
    std::printf("bwd:    %s\n", bwd.summary(opt.device).c_str());

    // 5. The per-launch profiles above come from the transaction-level
    //    A100 model; totals compose into training-epoch estimates.
    std::printf("maxk kernel: %s\n",
                maxk.stats.summary(opt.device).c_str());
    std::printf("\nquickstart OK\n");
    return 0;
}
