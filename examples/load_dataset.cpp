/**
 * @file
 * Dataset ingestion walkthrough: the graph/formats subsystem end to
 * end, self-contained (writes its own files under /tmp).
 *
 *  1. Save a graph in all three on-disk formats (edge list, text CSR,
 *     binary .maxkb container).
 *  2. Load each back through the format-sniffing loadAnyGraph().
 *  3. Swap a registry dataset's synthetic twin for an on-disk graph
 *     via MAXK_DATASET_DIR — the mechanism every bench and training
 *     task picks up transparently.
 *  4. Show that malformed input is a recoverable IoError value, not a
 *     process exit.
 *
 * Build & run:  ./build/examples/example_load_dataset
 */

#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"
#include "graph/formats/formats.hh"
#include "graph/generators.hh"
#include "graph/registry.hh"

using namespace maxk;

int
main()
{
    const std::string dir = "/tmp/maxk_example_datasets";
    if (std::system(("mkdir -p " + dir).c_str()) != 0) {
        std::fprintf(stderr, "cannot create %s\n", dir.c_str());
        return 1;
    }

    // 1. A small power-law graph, saved in every format.
    Rng rng(2024);
    CsrGraph g = rmat(/*scale=*/9, /*target_edges=*/4096, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    formats::saveEdgeList(g, dir + "/demo.el");
    formats::saveTextCsr(g, dir + "/demo.csr");
    formats::saveBinaryCsr(g, dir + "/demo.maxkb");
    std::printf("saved %u nodes / %u edges as demo.{el,csr,maxkb}\n",
                g.numNodes(), g.numEdges());

    // 2. loadAnyGraph sniffs the format from content.
    for (const char *file : {"/demo.el", "/demo.csr", "/demo.maxkb"}) {
        auto loaded = formats::loadAnyGraph(dir + file);
        if (!loaded) {
            std::fprintf(stderr, "%s\n",
                         loaded.error().describe().c_str());
            return 1;
        }
        const bool identical = loaded->rowPtr() == g.rowPtr() &&
                               loaded->colIdx() == g.colIdx() &&
                               loaded->values() == g.values();
        std::printf("  %-12s -> %u nodes, %u edges, bitwise %s\n", file,
                    loaded->numNodes(), loaded->numEdges(),
                    identical ? "identical" : "DIFFERENT");
    }

    // 3. Registry override: drop the file under the dataset name and
    // every materializeGraph() call resolves it instead of the twin.
    formats::saveBinaryCsr(g, dir + "/pubmed.maxkb");
    setenv(kDatasetDirEnv, dir.c_str(), 1);
    const auto info = findDataset("pubmed");
    Rng mat_rng(7);
    const CsrGraph resolved = materializeGraph(*info, mat_rng);
    std::printf("registry 'pubmed' with %s=%s: %u nodes (real file; "
                "twin would have %u)\n",
                kDatasetDirEnv, dir.c_str(), resolved.numNodes(),
                info->twinNodes);
    unsetenv(kDatasetDirEnv);

    // 4. Malformed input is a value, not a crash.
    auto broken = formats::parseTextCsr("maxk-csr 1 2 2\n0 1 2\n1 9\n",
                                        "<inline>");
    std::printf("malformed input -> %s\n",
                broken ? "unexpectedly parsed"
                       : broken.error().describe().c_str());
    return broken ? 1 : 0;
}
