/**
 * @file
 * Partition-parallel training demo (the BNS-GCN deployment the paper
 * cites as compatible with MaxK-GNN, Sec. 1):
 *
 *  1. partition a community graph across simulated GPUs,
 *  2. profile the per-epoch compute + boundary-exchange costs for the
 *     ReLU baseline and MaxK-GNN,
 *  3. actually train a MaxK-GNN on one partition to show the local
 *     model still learns.
 *
 * Usage: distributed_training [num_gpus]   (default 4)
 */

#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"
#include "common/table.hh"
#include "graph/partition.hh"
#include "graph/registry.hh"
#include "nn/distributed.hh"
#include "nn/trainer.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    const std::uint32_t gpus =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
    if (gpus < 1 || gpus > 64) {
        std::fprintf(stderr, "num_gpus must be in [1, 64]\n");
        return 1;
    }

    // A products-like community graph.
    TrainingTask task = *findTrainingTask("ogbn-products");
    task.accuracyNodes = 2048;
    task.accuracyAvgDegree = 20.0;
    Rng rng(77);
    TrainingData data = materializeTrainingData(task, rng);
    std::printf("graph: %u nodes, %u edges, %u classes\n",
                data.graph.numNodes(), data.graph.numEdges(),
                task.numClasses);

    // 1. Partition.
    const Partition part = bfsPartition(data.graph, gpus, rng);
    std::printf("partitioned across %u GPUs: balance %.3f, edge cut "
                "%.1f%%\n",
                gpus, part.balance(data.graph.numNodes()),
                part.edgeCutFraction(data.graph) * 100.0);

    // 2. Deployment profile: baseline vs MaxK.
    nn::ModelConfig relu;
    relu.kind = nn::GnnKind::Sage;
    relu.nonlin = nn::Nonlinearity::Relu;
    relu.numLayers = 3;
    relu.inDim = task.featureDim;
    relu.hiddenDim = 256;
    relu.outDim = task.numClasses;
    nn::ModelConfig maxk = relu;
    maxk.nonlin = nn::Nonlinearity::MaxK;
    maxk.maxkK = 32;

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.05);
    nn::ClusterConfig cluster;
    cluster.numGpus = gpus;

    const auto t_relu = nn::profileDistributedEpoch(relu, data.graph,
                                                    part, cluster, opt);
    const auto t_maxk = nn::profileDistributedEpoch(maxk, data.graph,
                                                    part, cluster, opt);

    TextTable t({"method", "compute ms", "exchange ms", "exchanged MB",
                 "epoch ms"});
    t.addRow({"ReLU baseline",
              formatFloat(t_relu.computeSeconds * 1e3, 3),
              formatFloat(t_relu.exchangeSeconds * 1e3, 3),
              formatFloat(t_relu.exchangedBytes / 1e6, 2),
              formatFloat(t_relu.total() * 1e3, 3)});
    t.addRow({"MaxK-GNN k=32",
              formatFloat(t_maxk.computeSeconds * 1e3, 3),
              formatFloat(t_maxk.exchangeSeconds * 1e3, 3),
              formatFloat(t_maxk.exchangedBytes / 1e6, 2),
              formatFloat(t_maxk.total() * 1e3, 3)});
    std::printf("\n%s\n", t.render().c_str());

    // 3. Train locally on partition 0.
    std::vector<NodeId> ids;
    TrainingData local;
    local.graph = extractSubgraph(data.graph, part.members(0), &ids);
    const NodeId n = local.graph.numNodes();
    local.features.resize(n, task.featureDim);
    for (NodeId v = 0; v < n; ++v) {
        std::copy(data.features.row(ids[v]),
                  data.features.row(ids[v]) + task.featureDim,
                  local.features.row(v));
        local.labels.push_back(data.labels[ids[v]]);
        local.trainMask.push_back(data.trainMask[ids[v]]);
        local.valMask.push_back(data.valMask[ids[v]]);
        local.testMask.push_back(data.testMask[ids[v]]);
    }
    std::printf("training MaxK-GNN on partition 0 (%u nodes)...\n", n);

    nn::ModelConfig local_cfg = maxk;
    local_cfg.hiddenDim = 64;
    local_cfg.maxkK = 8; // density-scaled
    nn::GnnModel model(local_cfg);
    nn::Trainer trainer(model, local, task);
    nn::TrainConfig tc;
    tc.epochs = 60;
    tc.evalEvery = 20;
    const auto r = trainer.run(tc);
    std::printf("partition-local test accuracy: %.4f (chance %.4f)\n",
                r.finalTestMetric, 1.0 / task.numClasses);
    return 0;
}
