/**
 * @file
 * Fig. 4 demo: train MLPs with MaxK and ReLU nonlinearities to fit
 * y = x^2 and print an ASCII rendering of the fits plus the error
 * curve, illustrating the universal-approximation property (Thm 3.2).
 *
 * Usage: approximator [hidden_units]   (default 32)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mlp/approximator.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    const std::uint32_t hidden =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 32;

    mlp::ApproxConfig cfg;
    cfg.hiddenUnits = hidden;
    cfg.epochs = 5000;
    cfg.numSamples = 65;
    cfg.seed = 5;

    cfg.nonlin = mlp::ApproxNonlin::MaxK;
    const auto maxk = mlp::approximateSquare(cfg);
    cfg.nonlin = mlp::ApproxNonlin::Relu;
    const auto relu = mlp::approximateSquare(cfg);

    std::printf("y = x^2 approximation with %u hidden units "
                "(k = %u for MaxK)\n\n",
                hidden, (hidden + 3) / 4);
    std::printf("  MaxK: mse %.2e  max|err| %.2e\n", maxk.mse,
                maxk.maxError);
    std::printf("  ReLU: mse %.2e  max|err| %.2e\n\n", relu.mse,
                relu.maxError);

    // ASCII plot of the target parabola (the fits overlap it at this
    // error level; '*' marks y = x^2 on [-1, 1]).
    const int width = 61, height = 16;
    std::vector<std::string> canvas(height, std::string(width, ' '));
    for (int c = 0; c < width; ++c) {
        const double xv = -1.0 + 2.0 * c / (width - 1);
        const int r = static_cast<int>((1.0 - xv * xv) * (height - 1));
        canvas[r][c] = '*';
    }
    std::printf("   y=1 +%s+\n", std::string(width, '-').c_str());
    for (const auto &line : canvas)
        std::printf("       |%s|\n", line.c_str());
    std::printf("   y=0 +%s+\n", std::string(width, '-').c_str());
    std::printf("       x = -1%sx = +1\n",
                std::string(width - 10, ' ').c_str());

    std::printf("\nMaxK loss curve (every 100 epochs, first 10 "
                "samples):\n  ");
    for (std::size_t i = 0; i < maxk.lossCurve.size() && i < 10; ++i)
        std::printf("%.1e ", maxk.lossCurve[i]);
    std::printf("\n\nTakeaway (paper Fig. 4): MaxK is a universal "
                "approximator on par with ReLU;\nincrease hidden units "
                "and the error keeps falling.\n");
    return 0;
}
