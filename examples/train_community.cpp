/**
 * @file
 * End-to-end example: train a MaxK-GNN (GraphSAGE backbone) on a
 * planted-partition community-detection task — the workload family the
 * paper's Reddit/ogbn evaluations represent — and compare against the
 * ReLU baseline on accuracy and simulated epoch time.
 *
 * Usage: train_community [dataset] [k]
 *   dataset: one of Flickr, Yelp, Reddit, ogbn-products, ogbn-proteins
 *            (default Reddit)
 *   k:       MaxK value at the paper's hidden width 256 (default 32)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.hh"
#include "graph/registry.hh"
#include "nn/trainer.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    const std::string dataset = argc > 1 ? argv[1] : "Reddit";
    const std::uint32_t k_paper =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 32;

    auto task_opt = findTrainingTask(dataset);
    if (!task_opt) {
        std::fprintf(stderr,
                     "unknown dataset '%s' (try Reddit, Flickr, Yelp, "
                     "ogbn-products, ogbn-proteins)\n",
                     dataset.c_str());
        return 1;
    }
    const TrainingTask task = *task_opt;

    Rng rng(2024);
    std::printf("materialising %s twin (SBM, %u classes)...\n",
                dataset.c_str(), task.numClasses);

    auto train = [&](nn::Nonlinearity nonlin, std::uint32_t k_scaled) {
        TrainingData data = materializeTrainingData(task, rng);
        nn::ModelConfig cfg;
        cfg.kind = nn::GnnKind::Sage;
        cfg.nonlin = nonlin;
        cfg.maxkK = k_scaled;
        cfg.numLayers = 2;
        cfg.inDim = task.featureDim;
        cfg.hiddenDim = 64;
        cfg.outDim = task.numClasses;
        cfg.dropout = 0.1f;
        nn::GnnModel model(cfg);
        nn::Trainer trainer(model, data, task);
        nn::TrainConfig tc;
        tc.epochs = 80;
        tc.evalEvery = 20;
        tc.verbose = true;
        return trainer.run(tc);
    };

    // Scale k from the paper's hidden width (256) to ours (64).
    const std::uint32_t k_scaled =
        std::max<std::uint32_t>(1, k_paper * 64 / 256);

    std::printf("\n--- ReLU baseline ---\n");
    const auto base = train(nn::Nonlinearity::Relu, 0);
    std::printf("\n--- MaxK-GNN (k=%u paper-scale, %u here) ---\n",
                k_paper, k_scaled);
    const auto maxk = train(nn::Nonlinearity::MaxK, k_scaled);

    std::printf("\n%s %s: baseline %.4f | MaxK-GNN %.4f "
                "(host: %.1fs vs %.1fs)\n",
                dataset.c_str(), metricName(task.metric),
                base.testAtBestVal, maxk.testAtBestVal,
                base.hostSeconds, maxk.hostSeconds);
    std::printf("Paper's claim (Table 5): MaxK at moderate k matches "
                "the ReLU baseline while\nthe SpGEMM/SSpMM kernels cut "
                "aggregation time by the Fig. 8 factors.\n");
    return 0;
}
